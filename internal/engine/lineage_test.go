package engine_test

import (
	"sync"
	"testing"

	"droidfuzz/internal/engine"
)

func TestValidResetMode(t *testing.T) {
	for mode, want := range map[string]bool{
		"":      true,
		"never": true,
		"exec":  true,
		"batch": true,
		"boot":  false,
		"EXEC":  false,
		"Exec":  false,
	} {
		if got := engine.ValidResetMode(mode); got != want {
			t.Errorf("ValidResetMode(%q) = %v, want %v", mode, got, want)
		}
	}
}

// TestPristineResetModeRestores: -reset=exec rewinds the device before
// every execution, so the restore counter must track the exec counter
// rather than staying at the crash-driven baseline.
func TestPristineResetModeRestores(t *testing.T) {
	e := newEngine(t, "A1", engine.Config{Seed: 1, Reset: engine.ResetExec})
	e.Run(100)
	st := e.Stats()
	if st.Execs < 100 {
		t.Fatalf("execs = %d, want >= 100", st.Execs)
	}
	if st.Restores+st.Reboots < 100 {
		t.Fatalf("restores+reboots = %d+%d, want >= execs (%d)",
			st.Restores, st.Reboots, st.Execs)
	}
}

// TestBatchResetModeIsDeterministic: -reset=batch rewinds once per batch
// window. Absolute reset counts are not comparable across modes (crash
// triage dominates the restore counter and each mode steers the campaign
// down a different trajectory), so this checks the mode runs the batch
// reset path and stays seed-deterministic.
func TestBatchResetModeIsDeterministic(t *testing.T) {
	a := newEngine(t, "A1", engine.Config{Seed: 1, Reset: engine.ResetBatch})
	b := newEngine(t, "A1", engine.Config{Seed: 1, Reset: engine.ResetBatch})
	a.Run(200)
	b.Run(200)
	sa, sb := a.Stats(), b.Stats()
	if sa.Execs < 200 {
		t.Fatalf("execs = %d, want >= 200", sa.Execs)
	}
	if sa.Restores+sa.Reboots == 0 {
		t.Fatal("batch mode never reset the device")
	}
	if sa.Execs != sb.Execs || sa.Restores != sb.Restores || sa.Reboots != sb.Reboots {
		t.Fatalf("same-seed batch runs diverged: %+v vs %+v", sa, sb)
	}
}

// TestLineageFanOutProducesExecs: with LineageK set, new-kernel-coverage
// admissions must fork cloned lineages whose executions are accounted
// separately, and the whole campaign must stay seed-deterministic.
func TestLineageFanOutProducesExecs(t *testing.T) {
	cfg := engine.Config{Seed: 1, LineageK: 2, LineageLen: 4}
	a := newEngine(t, "A1", cfg)
	b := newEngine(t, "A1", cfg)
	a.Run(300)
	b.Run(300)
	sa, sb := a.Stats(), b.Stats()
	if sa.LineageExecs == 0 {
		t.Fatal("lineage fan-out never executed")
	}
	if sa.Execs <= sa.LineageExecs {
		t.Fatalf("execs (%d) should include flat execs beyond lineage execs (%d)",
			sa.Execs, sa.LineageExecs)
	}
	if sa.Execs != sb.Execs || sa.LineageExecs != sb.LineageExecs {
		t.Fatalf("same seed diverged: execs %d vs %d, lineage %d vs %d",
			sa.Execs, sb.Execs, sa.LineageExecs, sb.LineageExecs)
	}
	if a.Accumulator().Total() != b.Accumulator().Total() {
		t.Fatalf("same-seed coverage diverged: %d vs %d",
			a.Accumulator().Total(), b.Accumulator().Total())
	}
}

// TestLineageOffByDefault: a plain config must never enter the lineage
// scheduler, keeping historical campaigns bit-identical.
func TestLineageOffByDefault(t *testing.T) {
	e := newEngine(t, "A1", engine.Config{Seed: 1})
	e.Run(200)
	if got := e.Stats().LineageExecs; got != 0 {
		t.Fatalf("lineage execs = %d without LineageK, want 0", got)
	}
}

// TestFleetConcurrentLineageVsStats races the status path against the new
// scheduler paths: a 4-engine fleet runs with lineage fan-out and batch
// pristine resets enabled while this goroutine hammers Stats (including
// the LineageExecs counter, which the lineage scheduler bumps from inside
// its fan-out loop). Run under -race.
func TestFleetConcurrentLineageVsStats(t *testing.T) {
	engines := make([]*engine.Engine, 4)
	for i := range engines {
		engines[i] = newEngine(t, "A1", engine.Config{
			Seed: int64(300 + i), LineageK: 2, LineageLen: 3, Reset: engine.ResetBatch,
		})
	}
	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Run(200)
		}()
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range engines {
				st := e.Stats()
				_ = st.LineageExecs + uint64(st.Restores)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	var lineage uint64
	for _, e := range engines {
		lineage += e.Stats().LineageExecs
	}
	if lineage == 0 {
		t.Fatal("fleet never fanned out; the race test exercised nothing")
	}
}

// TestLineageDoesNotBreakGoldenDeterminism: a lineage-enabled engine and
// a plain engine share the identical flat draw sequence — the lineage
// scheduler uses a private derived RNG, so turning it on must not shift
// the main pipeline's program stream. Flat exec counts can differ (the
// lineage adds executions), but the corpus seeded purely by flat
// admissions up to the first fan-out is shared; we check the cheap
// invariant that both runs admit a non-empty corpus and neither crashes
// the scheduler.
func TestLineageDoesNotBreakGoldenDeterminism(t *testing.T) {
	plain := newEngine(t, "B", engine.Config{Seed: 9})
	fan := newEngine(t, "B", engine.Config{Seed: 9, LineageK: 2, LineageLen: 3})
	plain.Run(200)
	fan.Run(200)
	if plain.Stats().CorpusSize == 0 || fan.Stats().CorpusSize == 0 {
		t.Fatal("corpus stayed empty")
	}
	if fan.Stats().LineageExecs == 0 {
		t.Fatal("lineage never fired on model B")
	}
}
