package engine_test

import (
	"sort"
	"sync"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/relation"
)

// rebootOnly forces the pre-PR-6 reset behavior: every crash fallout pays
// a full reboot. The golden-equivalence test runs the same campaign over a
// restoring broker and over this wrapper; the two must be bit-identical in
// everything except the Reboots/Restores split.
type rebootOnly struct{ *adb.Broker }

func (r rebootOnly) Reset() (bool, error) { return false, r.Broker.Reboot() }

// bugTitles returns the deduplicated crash titles of a run, sorted.
func bugTitles(e *engine.Engine) []string {
	var out []string
	for _, r := range e.Dedup().Records() {
		out = append(out, r.Title)
	}
	sort.Strings(out)
	return out
}

// TestRestoreMatchesRebootGolden is the PR 6 equivalence gate: a serial
// campaign that resets via snapshot restore must replay bit-identically to
// the same campaign resetting via full reboot — same corpus content, same
// accumulated signal, same deduplicated bugs, same stats apart from which
// reset counter advanced. Restore skipping clean subsystems is only sound
// if the engine cannot tell the two paths apart.
func TestRestoreMatchesRebootGolden(t *testing.T) {
	for _, model := range []string{"A1", "B"} {
		restoring := engine.New(newBroker(t, model), relation.New(), crash.NewDedup(),
			engine.Config{Seed: 77})
		rebooting := engine.New(rebootOnly{newBroker(t, model)}, relation.New(), crash.NewDedup(),
			engine.Config{Seed: 77})
		restoring.Run(400)
		rebooting.Run(400)

		sa, sb := restoring.Stats(), rebooting.Stats()
		if sa.Restores == 0 {
			t.Fatalf("model %s: restore path never exercised (no crashes in 400 execs?)", model)
		}
		if sb.Restores != 0 {
			t.Fatalf("model %s: rebootOnly wrapper restored %d times", model, sb.Restores)
		}
		if total := sa.Restores + sa.Reboots; total != sb.Reboots {
			t.Fatalf("model %s: reset counts differ: %d restores+reboots vs %d reboots",
				model, total, sb.Reboots)
		}
		// Everything else must match exactly.
		sa.Reboots, sa.Restores = 0, 0
		sb.Reboots, sb.Restores = 0, 0
		if sa != sb {
			t.Fatalf("model %s: stats diverged:\n  restore %+v\n  reboot  %+v", model, sa, sb)
		}
		if ha, hb := corpusHash(restoring), corpusHash(rebooting); ha != hb {
			t.Fatalf("model %s: corpora diverged: %s vs %s", model, ha, hb)
		}
		ta, tb := bugTitles(restoring), bugTitles(rebooting)
		if len(ta) != len(tb) {
			t.Fatalf("model %s: bug sets differ: %v vs %v", model, ta, tb)
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("model %s: bug sets differ: %v vs %v", model, ta, tb)
			}
		}
	}
}

// TestFleetConcurrentResetVsStats races the status path against resets: a
// 4-engine fleet fuzzes crashing devices (every crash triggers a snapshot
// restore) while this goroutine hammers Stats and the device-level reset
// counters. Run under -race; the device counters are atomics precisely so
// this never trips it.
func TestFleetConcurrentResetVsStats(t *testing.T) {
	engines := make([]*engine.Engine, 4)
	for i := range engines {
		engines[i] = newEngine(t, "A1", engine.Config{Seed: int64(100 + i)})
	}
	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Run(200)
		}()
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range engines {
				st := e.Stats()
				_ = st.Restores + st.Reboots
				if b := e.Broker(); b != nil {
					dev := b.Device()
					_ = dev.Restores() + dev.Reboots()
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	var restores int
	for _, e := range engines {
		restores += e.Stats().Restores
	}
	if restores == 0 {
		t.Fatal("fleet never restored; the race test exercised nothing")
	}
}

var _ adb.Executor = rebootOnly{}
