//go:build !droidfuzz_sanitize

package engine

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = false

// sanitizeStep is a no-op in normal builds; feed calls it unconditionally
// and the compiler erases the call. Build with -tags droidfuzz_sanitize
// for per-step relation-graph invariant checking.
func (e *Engine) sanitizeStep() {}
