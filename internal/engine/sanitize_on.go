//go:build droidfuzz_sanitize

package engine

import "fmt"

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = true

// sanitizeStep re-verifies the relation graph at the end of every feedback
// fold. Learn and Decay already self-check under this tag; the step-level
// sweep additionally catches corruption introduced between mutations (a
// mutator scribbling on a shared vertex, a forgotten lock) at the
// iteration that caused it.
func (e *Engine) sanitizeStep() {
	if err := e.graph.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("droidfuzz_sanitize: relation graph corrupted during engine step: %v", err))
	}
}
