package feedback

import (
	"sync"
	"testing"
)

// TestAccumulatorConcurrentMerge: engines sharing an accumulator merge
// overlapping signals in parallel; every distinct element must be counted
// exactly once across the returned new-subsets, and the final totals must
// match a serial reference. Run under -race this covers the lock-free
// kernel bitmap path racing the mutex-guarded directional path.
func TestAccumulatorConcurrentMerge(t *testing.T) {
	const workers = 8
	signals := make([][]uint64, workers)
	ref := NewAccumulator()
	distinct := 0
	for w := range signals {
		var elems []uint64
		for i := 0; i < 300; i++ {
			// Kernel PCs with heavy cross-worker overlap.
			elems = append(elems, uint64((w*97+i*13)%1500+1))
			// Directional elements above the HAL namespace.
			elems = append(elems, halNamespace|uint64((w*31+i*7)%800))
		}
		signals[w] = elems
		s := SignalOf(elems...)
		distinct += ref.Merge(s)
		s.Release()
	}
	if ref.Total() != distinct {
		t.Fatalf("reference total %d != merged sum %d", ref.Total(), distinct)
	}

	acc := NewAccumulator()
	var wg sync.WaitGroup
	newCounts := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := SignalOf(signals[w]...)
			d := acc.MergeNew(s)
			newCounts[w] = d.Len()
			d.Release()
			s.Release()
		}(w)
	}
	wg.Wait()

	total := 0
	for _, n := range newCounts {
		total += n
	}
	if total != distinct {
		t.Fatalf("concurrent new-subset sum %d, want %d", total, distinct)
	}
	if acc.Total() != ref.Total() || acc.KernelTotal() != ref.KernelTotal() {
		t.Fatalf("concurrent totals %d/%d diverge from serial %d/%d",
			acc.Total(), acc.KernelTotal(), ref.Total(), ref.KernelTotal())
	}
	refPCs, accPCs := ref.KernelPCs(), acc.KernelPCs()
	if len(refPCs) != len(accPCs) {
		t.Fatalf("kernel PC lists diverge: %d vs %d", len(accPCs), len(refPCs))
	}
	for i := range refPCs {
		if refPCs[i] != accPCs[i] {
			t.Fatalf("kernel PC %d diverges: %#x vs %#x", i, accPCs[i], refPCs[i])
		}
	}
}
