// Package feedback implements DroidFuzz's cross-boundary execution state
// feedback (paper §IV-D). Kernel coverage comes from kcov directly. The
// closed-source HAL's execution behavior is reflected through *directional*
// system-call invocation coverage: HAL-origin syscalls are mapped through a
// specialized-ID lookup table (splitting generic calls like ioctl by their
// critical argument), and ordered n-grams of those IDs are hashed into
// signal elements appended to the kernel coverage. Both halves then flow
// through identical new-signal analysis.
//
// The package is built for an allocation-free steady state: Signal values
// are pooled flat slices rather than per-execution maps, the specialized-ID
// table is keyed by packed integers (no string formatting per trace event),
// and the Accumulator maintains its kernel/total counts incrementally so
// stats and snapshots never rescan the accumulated set.
package feedback

import (
	"fmt"
	"slices"
	"sync"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/kcov"
)

// FNV-1a 64-bit parameters, used both for n-gram hashing and for packing
// observed syscall events into SpecTable keys.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// SpecTable is the specialized system-call ID lookup table compiled at
// initialization from the target's descriptions: each (syscall, critical
// argument) pair — e.g. (ioctl, TCPC_SET_MODE) — gets a unique ID, and
// generic syscalls without a critical argument get one ID per (syscall,
// device path) pair.
//
// Lookups are read-mostly: the common case (an already-assigned event) takes
// a shared lock and a single integer-keyed map read with no allocation.
type SpecTable struct {
	mu     sync.RWMutex
	ids    map[uint64]uint32
	nextID uint32
}

// NewSpecTable builds the table from all ioctl request constants found in
// the target's syscall descriptions, pre-assigning stable IDs.
func NewSpecTable(target *dsl.Target) *SpecTable {
	t := &SpecTable{ids: make(map[uint64]uint32), nextID: 1}
	// Pre-populate with the specialized ioctls from the descriptions so IDs
	// are stable across runs regardless of observation order. The sort runs
	// over the historical string form of the keys: assignment order — and
	// therefore every ID, directional hash, and replayed campaign — stays
	// bit-identical to earlier table versions.
	type initKey struct {
		name string
		arg  uint64
	}
	keys := make([]initKey, 0)
	for _, d := range target.SyscallCalls() {
		if d.Syscall != "ioctl" || d.CriticalArg < 0 {
			continue
		}
		req := d.Args[d.CriticalArg].Type.Val
		keys = append(keys, initKey{fmt.Sprintf("ioctl$%#x", req), req})
	}
	slices.SortFunc(keys, func(a, b initKey) int {
		if a.name < b.name {
			return -1
		}
		if a.name > b.name {
			return 1
		}
		return 0
	})
	for _, k := range keys {
		pk := packEvent("ioctl", "", k.arg)
		if _, ok := t.ids[pk]; !ok {
			t.ids[pk] = t.nextID
			t.nextID++
		}
	}
	return t
}

// packEvent folds one observed syscall event into the table's integer key
// space: ioctls are keyed by their critical argument, generic syscalls by
// (name, device path). FNV-1a over the raw bytes keeps the packing
// allocation-free; a 64-bit collision between distinct events is treated as
// negligible at the scale of a device's syscall surface.
func packEvent(nr, path string, arg uint64) uint64 {
	if nr == "ioctl" {
		h := uint64(fnvOffset64)
		h = (h ^ 0xf1) * fnvPrime64 // ioctl namespace tag
		for i := 0; i < 64; i += 8 {
			h = (h ^ (arg >> i & 0xff)) * fnvPrime64
		}
		return h
	}
	h := uint64(fnvOffset64)
	for i := 0; i < len(nr); i++ {
		h = (h ^ uint64(nr[i])) * fnvPrime64
	}
	h = (h ^ 0x24) * fnvPrime64 // separator: "read"+"x" ≠ "readx"+""
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * fnvPrime64
	}
	return h
}

// ID returns the specialized ID for one observed syscall event, assigning a
// fresh ID for combinations not seen before (runtime-discovered requests).
func (t *SpecTable) ID(ev adb.TraceEvent) uint32 {
	key := packEvent(ev.NR, ev.Path, ev.Arg)
	t.mu.RLock()
	id, ok := t.ids[key]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[key]; ok {
		return id
	}
	id = t.nextID
	t.nextID++
	t.ids[key] = id
	return id
}

// Size reports the number of assigned specialized IDs.
func (t *SpecTable) Size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.ids)
}

// Sequence maps an ordered HAL trace to its specialized-ID sequence.
func (t *SpecTable) Sequence(trace []adb.TraceEvent) []uint32 {
	return t.appendSequence(make([]uint32, 0, len(trace)), trace)
}

// appendSequence appends the trace's specialized IDs to dst, reusing its
// capacity (the pooled-signal hot path).
func (t *SpecTable) appendSequence(dst []uint32, trace []adb.TraceEvent) []uint32 {
	for _, ev := range trace {
		dst = append(dst, t.ID(ev))
	}
	return dst
}

// Signal is a set of 64-bit signal elements: kernel PCs live in the low
// 32-bit space; directional HAL hashes are offset into a disjoint namespace
// so the two coverage kinds merge without collisions.
//
// It is backed by a sorted, deduplicated flat slice and recycled through a
// pool: obtain one from FromExec, NewSignal, or SignalOf, and hand it back
// with Release once no longer referenced. Releasing is optional — an
// unreleased Signal is simply collected by the GC — but the fuzzing hot
// path releases everything and runs allocation-free in steady state.
type Signal struct {
	elems  []uint64 // sorted ascending, unique once sealed
	kernel int      // count of elements below halNamespace
	seq    []uint32 // scratch: specialized-ID sequence of the HAL trace
	san    sanState // zero-sized unless built with -tags droidfuzz_sanitize
}

var signalPool = sync.Pool{New: func() any { return new(Signal) }}

// getSignal is the one pool exit: every constructor draws through here so
// the sanitizer sees each acquisition. The pooled signal is owned by the
// caller, who must Release it.
func getSignal() *Signal {
	s := signalPool.Get().(*Signal)
	s.san.acquire()
	s.elems = s.elems[:0]
	s.kernel = 0
	return s
}

// NewSignal returns an empty pooled signal.
func NewSignal() *Signal {
	return getSignal()
}

// SignalOf builds a pooled signal from explicit elements (tests, tools).
func SignalOf(elems ...uint64) *Signal {
	s := NewSignal()
	s.elems = append(s.elems, elems...)
	s.seal()
	return s
}

// Release returns the signal to the pool. The caller must not use it
// afterwards.
func (s *Signal) Release() {
	if s == nil {
		return
	}
	s.san.release("feedback.Signal", sanCaller())
	signalPool.Put(s)
}

// seal sorts and deduplicates the element slice and computes the
// kernel/directional boundary. Elements are unordered sets semantically;
// the sorted representation makes membership and subset checks cheap.
func (s *Signal) seal() {
	s.san.alive("feedback.Signal.seal")
	slices.Sort(s.elems)
	s.elems = slices.Compact(s.elems)
	s.kernel, _ = slices.BinarySearch(s.elems, halNamespace)
}

// Len reports the number of signal elements.
func (s *Signal) Len() int {
	s.san.alive("feedback.Signal.Len")
	return len(s.elems)
}

// KernelLen reports how many elements are kernel PCs (vs directional).
func (s *Signal) KernelLen() int {
	s.san.alive("feedback.Signal.KernelLen")
	return s.kernel
}

// Elems exposes the sorted elements; the slice is owned by the signal and
// must not be retained past Release.
func (s *Signal) Elems() []uint64 {
	s.san.alive("feedback.Signal.Elems")
	return s.elems
}

// Contains reports whether e is in the signal.
func (s *Signal) Contains(e uint64) bool {
	s.san.alive("feedback.Signal.Contains")
	_, ok := slices.BinarySearch(s.elems, e)
	return ok
}

// ContainsAll reports whether every element of want is in s (both sorted:
// one merge walk, no allocation).
func (s *Signal) ContainsAll(want *Signal) bool {
	s.san.alive("feedback.Signal.ContainsAll")
	want.san.alive("feedback.Signal.ContainsAll(want)")
	i := 0
	for _, w := range want.elems {
		for i < len(s.elems) && s.elems[i] < w {
			i++
		}
		if i >= len(s.elems) || s.elems[i] != w {
			return false
		}
	}
	return true
}

// halNamespace offsets directional-coverage hashes away from kernel PCs.
const halNamespace = uint64(1) << 32

// NgramOrders are the n-gram sizes hashed from the specialized-ID sequence;
// 1-grams capture which specialized calls ran, 2-grams capture pairwise
// order — the property plain kernel coverage "disregards" (paper §IV-D).
// Longer windows add little beyond noise: every fresh interleaving mints
// new hashes, flooding the corpus without improving guidance.
var NgramOrders = []int{1, 2}

// FromExec builds the joint signal for one execution result: kernel PCs
// plus directional n-gram hashes of the HAL syscall sequence. A nil table
// yields kernel-only signal (the DF-NoHCov ablation). The returned signal
// is pooled; Release it when done.
func FromExec(res *adb.ExecResult, table *SpecTable) *Signal {
	s := getSignal()
	for _, pc := range res.KernelCov {
		s.elems = append(s.elems, uint64(pc))
	}
	if table != nil {
		s.seq = table.appendSequence(s.seq[:0], res.HALTrace)
		for _, n := range NgramOrders {
			s.addNgrams(s.seq, n)
		}
	}
	s.seal()
	return s
}

// addNgrams hashes every n-length window of seq into the signal.
func (s *Signal) addNgrams(seq []uint32, n int) {
	if n <= 0 || len(seq) < n {
		return
	}
	for i := 0; i+n <= len(seq); i++ {
		s.elems = append(s.elems, ngramElem(seq, i, n))
	}
}

// ngramElem hashes the n-length window of seq at i into its signal element.
// Both the pooled Signal path and the streaming observe path derive n-gram
// elements through this one function, so they cannot drift apart.
func ngramElem(seq []uint32, i, n int) uint64 {
	var h uint64 = fnvOffset64
	h ^= uint64(n)
	h *= fnvPrime64
	for _, id := range seq[i : i+n] {
		h ^= uint64(id)
		h *= fnvPrime64
	}
	return halNamespace | (h>>32<<16 | h&0xffff)
}

// Accumulator tracks the maximal signal observed across a campaign and
// answers whether an execution contributed new state. Kernel and total
// counts are maintained incrementally on merge, so Total, KernelTotal,
// Stats reads, and Snapshot are O(1) instead of rescanning the set.
//
// The accumulated state is split by namespace. Kernel PCs — every signal
// element below halNamespace fits in 32 bits — live in a dense atomic
// kcov.Bitmap, so the kernel half of a merge is lock-free: engines sharing
// an accumulator at fleet scale fold coverage concurrently with one atomic
// OR per PC. Directional n-gram elements (≥ halNamespace, up to ~2^48)
// stay in a map guarded by the mutex, which also covers history. A signal's
// sorted element slice makes the split free: elems[:kernel] is the kernel
// prefix, elems[kernel:] the directional tail.
type Accumulator struct {
	kernel *kcov.Bitmap // elements < halNamespace, lock-free
	san    accSan
	mu     sync.Mutex
	dir    map[uint64]struct{} // elements ≥ halNamespace
	// history records (virtual time, kernel coverage count) snapshots.
	history []Point
}

// Point is one coverage-over-time sample.
type Point struct {
	VTime  uint64 // executions so far
	Kernel int    // distinct kernel PCs
	Total  int    // total signal elements
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{kernel: kcov.NewBitmap(), dir: make(map[uint64]struct{})}
}

// Merge folds a signal into the accumulated maximum, returning the number
// of new elements it contributed. The kernel prefix merges lock-free.
func (a *Accumulator) Merge(s *Signal) int {
	added := 0
	for _, e := range s.elems[:s.kernel] {
		if a.kernel.Add(uint32(e)) {
			added++
		}
	}
	a.san.observeKernelElems(s.elems[:s.kernel])
	if rest := s.elems[s.kernel:]; len(rest) > 0 {
		a.mu.Lock()
		for _, e := range rest {
			if _, ok := a.dir[e]; !ok {
				a.dir[e] = struct{}{}
				added++
			}
		}
		a.mu.Unlock()
	}
	a.san.verify(a.kernel)
	return added
}

// MergeNew folds a signal into the accumulated maximum and returns the
// subset that was new — the fused form of NewOf followed by Merge that the
// engine's per-execution hot path uses. The returned signal is pooled;
// Release it when done.
func (a *Accumulator) MergeNew(s *Signal) *Signal {
	s.san.alive("feedback.Accumulator.MergeNew(s)")
	d := getSignal()
	for _, e := range s.elems[:s.kernel] {
		if a.kernel.Add(uint32(e)) {
			d.elems = append(d.elems, e)
		}
	}
	a.san.observeKernelElems(s.elems[:s.kernel])
	// s is sorted and unique, so the kernel prefix of the filtered subset
	// is complete here: its length is d's namespace split.
	d.kernel = len(d.elems)
	if rest := s.elems[s.kernel:]; len(rest) > 0 {
		a.mu.Lock()
		for _, e := range rest {
			if _, ok := a.dir[e]; !ok {
				a.dir[e] = struct{}{}
				d.elems = append(d.elems, e)
			}
		}
		a.mu.Unlock()
	}
	a.san.verify(a.kernel)
	return d
}

// observeExec folds one execution's signal elements — its kernel PCs and
// the n-gram hashes of its specialized-ID sequence seq — straight into the
// accumulated maximum, reporting whether anything was new. It derives the
// exact element set FromExec would (PCs plus ngramElem windows) but skips
// the Signal representation entirely: no sort, no dedup, no pooled set —
// the bitmap and map merges dedup for free. This is the uplink filter's
// hot path, where per-execution novelty is the only question asked.
func (a *Accumulator) observeExec(pcs []uint32, seq []uint32) bool {
	novel := false
	for _, pc := range pcs {
		if a.kernel.Add(pc) {
			novel = true
		}
	}
	a.san.observeKernelPCs(pcs)
	a.mu.Lock()
	for _, n := range NgramOrders {
		for i := 0; i+n <= len(seq); i++ {
			e := ngramElem(seq, i, n)
			if _, ok := a.dir[e]; !ok {
				a.dir[e] = struct{}{}
				novel = true
			}
		}
	}
	a.mu.Unlock()
	a.san.verify(a.kernel)
	return novel
}

// HasNew reports whether s contains elements outside the accumulated
// maximum, without merging.
func (a *Accumulator) HasNew(s *Signal) bool {
	for _, e := range s.elems[:s.kernel] {
		if !a.kernel.Has(uint32(e)) {
			return true
		}
	}
	rest := s.elems[s.kernel:]
	if len(rest) == 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, e := range rest {
		if _, ok := a.dir[e]; !ok {
			return true
		}
	}
	return false
}

// NewOf returns the subset of s not yet accumulated, without merging. The
// returned signal is pooled; Release it when done.
func (a *Accumulator) NewOf(s *Signal) *Signal {
	s.san.alive("feedback.Accumulator.NewOf(s)")
	d := getSignal()
	for _, e := range s.elems[:s.kernel] {
		if !a.kernel.Has(uint32(e)) {
			d.elems = append(d.elems, e)
		}
	}
	d.kernel = len(d.elems)
	if rest := s.elems[s.kernel:]; len(rest) > 0 {
		a.mu.Lock()
		for _, e := range rest {
			if _, ok := a.dir[e]; !ok {
				d.elems = append(d.elems, e)
			}
		}
		a.mu.Unlock()
	}
	return d
}

// Total reports the accumulated signal size.
func (a *Accumulator) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.kernel.Count() + len(a.dir)
}

// KernelTotal reports the accumulated count of distinct kernel PCs.
func (a *Accumulator) KernelTotal() int {
	return a.kernel.Count()
}

// KernelPCs returns the accumulated kernel PCs (for per-driver accounting),
// in ascending order straight off the bitmap scan.
func (a *Accumulator) KernelPCs() []uint32 {
	return a.kernel.Sorted()
}

// Snapshot appends a coverage-over-time sample at the given virtual time.
// With incremental counters this is O(1), so frequent sampling (the
// engine's every-25-executions cadence) costs nothing.
func (a *Accumulator) Snapshot(vtime uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.history = append(a.history, Point{VTime: vtime, Kernel: a.kernel.Count(), Total: a.kernel.Count() + len(a.dir)})
}

// History returns the recorded coverage-over-time samples.
func (a *Accumulator) History() []Point {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Point, len(a.history))
	copy(out, a.history)
	return out
}
