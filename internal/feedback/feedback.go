// Package feedback implements DroidFuzz's cross-boundary execution state
// feedback (paper §IV-D). Kernel coverage comes from kcov directly. The
// closed-source HAL's execution behavior is reflected through *directional*
// system-call invocation coverage: HAL-origin syscalls are mapped through a
// specialized-ID lookup table (splitting generic calls like ioctl by their
// critical argument), and ordered n-grams of those IDs are hashed into
// signal elements appended to the kernel coverage. Both halves then flow
// through identical new-signal analysis.
package feedback

import (
	"fmt"
	"sort"
	"sync"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
)

// SpecTable is the specialized system-call ID lookup table compiled at
// initialization from the target's descriptions: each (syscall, critical
// argument) pair — e.g. (ioctl, TCPC_SET_MODE) — gets a unique ID, and
// generic syscalls without a critical argument get one ID per (syscall,
// device path) pair.
type SpecTable struct {
	mu     sync.Mutex
	ids    map[string]uint32
	nextID uint32
}

// NewSpecTable builds the table from all ioctl request constants found in
// the target's syscall descriptions, pre-assigning stable IDs.
func NewSpecTable(target *dsl.Target) *SpecTable {
	t := &SpecTable{ids: make(map[string]uint32), nextID: 1}
	// Pre-populate with the specialized ioctls from the descriptions so
	// IDs are stable across runs regardless of observation order.
	names := make([]string, 0)
	for _, d := range target.SyscallCalls() {
		if d.Syscall != "ioctl" || d.CriticalArg < 0 {
			continue
		}
		req := d.Args[d.CriticalArg].Type.Val
		names = append(names, specKey("ioctl", "", req))
	}
	sort.Strings(names)
	for _, k := range names {
		if _, ok := t.ids[k]; !ok {
			t.ids[k] = t.nextID
			t.nextID++
		}
	}
	return t
}

func specKey(nr, path string, arg uint64) string {
	if nr == "ioctl" {
		return fmt.Sprintf("ioctl$%#x", arg)
	}
	return nr + "$" + path
}

// ID returns the specialized ID for one observed syscall event, assigning a
// fresh ID for combinations not seen before (runtime-discovered requests).
func (t *SpecTable) ID(ev adb.TraceEvent) uint32 {
	key := specKey(ev.NR, ev.Path, ev.Arg)
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[key]; ok {
		return id
	}
	id := t.nextID
	t.nextID++
	t.ids[key] = id
	return id
}

// Size reports the number of assigned specialized IDs.
func (t *SpecTable) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ids)
}

// Sequence maps an ordered HAL trace to its specialized-ID sequence.
func (t *SpecTable) Sequence(trace []adb.TraceEvent) []uint32 {
	out := make([]uint32, len(trace))
	for i, ev := range trace {
		out[i] = t.ID(ev)
	}
	return out
}

// Signal is a set of 64-bit signal elements: kernel PCs live in the low
// 32-bit space; directional HAL hashes are offset into a disjoint namespace
// so the two coverage kinds merge without collisions.
type Signal map[uint64]struct{}

// halNamespace offsets directional-coverage hashes away from kernel PCs.
const halNamespace = uint64(1) << 32

// NgramOrders are the n-gram sizes hashed from the specialized-ID sequence;
// 1-grams capture which specialized calls ran, 2-grams capture pairwise
// order — the property plain kernel coverage "disregards" (paper §IV-D).
// Longer windows add little beyond noise: every fresh interleaving mints
// new hashes, flooding the corpus without improving guidance.
var NgramOrders = []int{1, 2}

// FromExec builds the joint signal for one execution result: kernel PCs
// plus directional n-gram hashes of the HAL syscall sequence. A nil table
// yields kernel-only signal (the DF-NoHCov ablation).
func FromExec(res *adb.ExecResult, table *SpecTable) Signal {
	s := make(Signal, len(res.KernelCov))
	for _, pc := range res.KernelCov {
		s[uint64(pc)] = struct{}{}
	}
	if table == nil {
		return s
	}
	seq := table.Sequence(res.HALTrace)
	for _, n := range NgramOrders {
		addNgrams(s, seq, n)
	}
	return s
}

// addNgrams hashes every n-length window of seq into the signal.
func addNgrams(s Signal, seq []uint32, n int) {
	if n <= 0 || len(seq) < n {
		return
	}
	for i := 0; i+n <= len(seq); i++ {
		var h uint64 = 14695981039346656037 // FNV-64 offset basis
		h ^= uint64(n)
		h *= 1099511628211
		for _, id := range seq[i : i+n] {
			h ^= uint64(id)
			h *= 1099511628211
		}
		s[halNamespace|(h>>32<<16|h&0xffff)] = struct{}{}
	}
}

// Len reports the number of signal elements.
func (s Signal) Len() int { return len(s) }

// KernelLen reports how many elements are kernel PCs (vs directional).
func (s Signal) KernelLen() int {
	n := 0
	for e := range s {
		if e < halNamespace {
			n++
		}
	}
	return n
}

// Accumulator tracks the maximal signal observed across a campaign and
// answers whether an execution contributed new state.
type Accumulator struct {
	mu  sync.Mutex
	max Signal
	// history records (virtual time, kernel coverage count) snapshots.
	history []Point
}

// Point is one coverage-over-time sample.
type Point struct {
	VTime  uint64 // executions so far
	Kernel int    // distinct kernel PCs
	Total  int    // total signal elements
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{max: make(Signal)}
}

// Merge folds a signal into the accumulated maximum, returning the number
// of new elements it contributed.
func (a *Accumulator) Merge(s Signal) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	added := 0
	for e := range s {
		if _, ok := a.max[e]; !ok {
			a.max[e] = struct{}{}
			added++
		}
	}
	return added
}

// HasNew reports whether s contains elements outside the accumulated
// maximum, without merging.
func (a *Accumulator) HasNew(s Signal) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for e := range s {
		if _, ok := a.max[e]; !ok {
			return true
		}
	}
	return false
}

// NewOf returns the subset of s not yet accumulated.
func (a *Accumulator) NewOf(s Signal) Signal {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := make(Signal)
	for e := range s {
		if _, ok := a.max[e]; !ok {
			d[e] = struct{}{}
		}
	}
	return d
}

// Total reports the accumulated signal size.
func (a *Accumulator) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.max)
}

// KernelTotal reports the accumulated count of distinct kernel PCs.
func (a *Accumulator) KernelTotal() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for e := range a.max {
		if e < halNamespace {
			n++
		}
	}
	return n
}

// KernelPCs returns the accumulated kernel PCs (for per-driver accounting).
func (a *Accumulator) KernelPCs() []uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]uint32, 0)
	for e := range a.max {
		if e < halNamespace {
			out = append(out, uint32(e))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot appends a coverage-over-time sample at the given virtual time.
func (a *Accumulator) Snapshot(vtime uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	kernel := 0
	for e := range a.max {
		if e < halNamespace {
			kernel++
		}
	}
	a.history = append(a.history, Point{VTime: vtime, Kernel: kernel, Total: len(a.max)})
}

// History returns the recorded coverage-over-time samples.
func (a *Accumulator) History() []Point {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Point, len(a.history))
	copy(out, a.history)
	return out
}
