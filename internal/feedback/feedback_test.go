package feedback

import (
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
)

func specTarget(t *testing.T) *dsl.Target {
	t.Helper()
	target, err := dsl.NewTarget(drivers.TCPCDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	return target
}

func TestSpecTableStableIDs(t *testing.T) {
	a := NewSpecTable(specTarget(t))
	b := NewSpecTable(specTarget(t))
	ev := adb.TraceEvent{NR: "ioctl", Path: "/dev/tcpc0", Arg: drivers.TCPCSetMode}
	if a.ID(ev) != b.ID(ev) {
		t.Fatal("IDs differ across identical tables")
	}
	if a.Size() == 0 {
		t.Fatal("table empty after init")
	}
}

func TestSpecTableSplitsIoctlByRequest(t *testing.T) {
	tab := NewSpecTable(specTarget(t))
	a := tab.ID(adb.TraceEvent{NR: "ioctl", Arg: drivers.TCPCSetMode})
	b := tab.ID(adb.TraceEvent{NR: "ioctl", Arg: drivers.TCPCSetVoltage})
	if a == b {
		t.Fatal("different requests share an ID")
	}
	if a != tab.ID(adb.TraceEvent{NR: "ioctl", Arg: drivers.TCPCSetMode}) {
		t.Fatal("ID unstable")
	}
}

func TestSpecTableGeneralSyscallsByPath(t *testing.T) {
	tab := NewSpecTable(specTarget(t))
	a := tab.ID(adb.TraceEvent{NR: "read", Path: "/dev/tcpc0"})
	b := tab.ID(adb.TraceEvent{NR: "read", Path: "/dev/hci0"})
	c := tab.ID(adb.TraceEvent{NR: "write", Path: "/dev/tcpc0"})
	if a == b || a == c {
		t.Fatal("general syscall specialization broken")
	}
}

// TestSpecTableIDAllocationFree pins the packed-key property the hot path
// depends on: an already-assigned lookup performs zero allocations.
func TestSpecTableIDAllocationFree(t *testing.T) {
	tab := NewSpecTable(specTarget(t))
	ev := adb.TraceEvent{NR: "ioctl", Path: "/dev/tcpc0", Arg: drivers.TCPCSetMode}
	tab.ID(ev)
	if n := testing.AllocsPerRun(100, func() { tab.ID(ev) }); n != 0 {
		t.Fatalf("ID allocates %v per run", n)
	}
}

func result(events ...adb.TraceEvent) *adb.ExecResult {
	return &adb.ExecResult{
		KernelCov: []uint32{100, 200},
		HALTrace:  events,
	}
}

func ev(arg uint64) adb.TraceEvent {
	return adb.TraceEvent{NR: "ioctl", Path: "/dev/tcpc0", Arg: arg}
}

// TestDirectionalOrderSensitivity is the core §IV-D property: the same set
// of HAL syscalls in a different order produces a different signal, which
// plain kernel coverage cannot distinguish.
func TestDirectionalOrderSensitivity(t *testing.T) {
	tab := NewSpecTable(specTarget(t))
	s1 := FromExec(result(ev(1), ev(2), ev(3)), tab)
	s2 := FromExec(result(ev(3), ev(2), ev(1)), tab)

	// Kernel part identical.
	if s1.KernelLen() != s2.KernelLen() {
		t.Fatal("kernel parts differ")
	}
	// Directional parts differ.
	diff := false
	for _, e := range s1.Elems() {
		if !s2.Contains(e) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("order change produced identical signal")
	}
}

func TestNilTableIsKernelOnly(t *testing.T) {
	s := FromExec(result(ev(1), ev(2)), nil)
	if s.Len() != 2 || s.KernelLen() != 2 {
		t.Fatalf("signal = %d/%d", s.Len(), s.KernelLen())
	}
}

func TestNgramCounts(t *testing.T) {
	tab := NewSpecTable(specTarget(t))
	// 3 events: 3 unigrams + 2 bigrams = up to 5 directional elements
	// (dedup may merge repeats) + 2 kernel PCs.
	s := FromExec(result(ev(1), ev(2), ev(3)), tab)
	directional := s.Len() - s.KernelLen()
	if directional != 5 {
		t.Fatalf("directional elements = %d, want 5", directional)
	}
	// A single event yields only its unigram.
	s = FromExec(result(ev(1)), tab)
	if s.Len()-s.KernelLen() != 1 {
		t.Fatal("single-event n-grams wrong")
	}
}

// TestSignalReuse exercises the pool round trip: a released signal is
// rebuilt from scratch with no stale elements.
func TestSignalReuse(t *testing.T) {
	tab := NewSpecTable(specTarget(t))
	s := FromExec(result(ev(1), ev(2), ev(3)), tab)
	s.Release()
	s2 := FromExec(&adb.ExecResult{KernelCov: []uint32{7}}, tab)
	if s2.Len() != 1 || s2.KernelLen() != 1 {
		t.Fatalf("reused signal dirty: %d/%d", s2.Len(), s2.KernelLen())
	}
	if !s2.Contains(7) || s2.Contains(100) {
		t.Fatal("reused signal has stale membership")
	}
}

func TestSignalContainsAll(t *testing.T) {
	a := SignalOf(1, 2, 3, halNamespace|5)
	sub := SignalOf(2, halNamespace|5)
	miss := SignalOf(2, 4)
	if !a.ContainsAll(sub) {
		t.Fatal("subset not detected")
	}
	if a.ContainsAll(miss) {
		t.Fatal("non-subset detected as subset")
	}
	if !a.ContainsAll(NewSignal()) {
		t.Fatal("empty set not a subset")
	}
}

func TestAccumulator(t *testing.T) {
	acc := NewAccumulator()
	tab := NewSpecTable(specTarget(t))
	s1 := FromExec(result(ev(1)), tab)
	if !acc.HasNew(s1) {
		t.Fatal("fresh signal not new")
	}
	added := acc.Merge(s1)
	if added != s1.Len() {
		t.Fatalf("added = %d, want %d", added, s1.Len())
	}
	if acc.HasNew(s1) {
		t.Fatal("merged signal still new")
	}
	if acc.NewOf(s1).Len() != 0 {
		t.Fatal("NewOf after merge nonzero")
	}
	s2 := FromExec(result(ev(1), ev(2)), tab)
	nw := acc.NewOf(s2)
	if nw.Len() == 0 {
		t.Fatal("extended signal not new")
	}
	acc.Merge(s2)
	if acc.Total() != s2.Len() {
		t.Fatalf("total = %d, want %d", acc.Total(), s2.Len())
	}
	if acc.KernelTotal() != 2 {
		t.Fatalf("kernel total = %d", acc.KernelTotal())
	}
	if len(acc.KernelPCs()) != 2 {
		t.Fatal("kernel PCs wrong")
	}
}

// TestAccumulatorMergeNew checks the fused one-lock path agrees with the
// two-pass NewOf+Merge it replaced.
func TestAccumulatorMergeNew(t *testing.T) {
	acc := NewAccumulator()
	s1 := SignalOf(1, 2, halNamespace|9)
	d1 := acc.MergeNew(s1)
	if d1.Len() != 3 || d1.KernelLen() != 2 {
		t.Fatalf("first MergeNew = %d/%d, want 3/2", d1.Len(), d1.KernelLen())
	}
	if acc.Total() != 3 || acc.KernelTotal() != 2 {
		t.Fatalf("accumulator after first MergeNew = %d/%d", acc.Total(), acc.KernelTotal())
	}
	// Overlapping second signal: only the fresh elements come back.
	s2 := SignalOf(2, 3, halNamespace|9, halNamespace|10)
	d2 := acc.MergeNew(s2)
	if d2.Len() != 2 || d2.KernelLen() != 1 {
		t.Fatalf("second MergeNew = %d/%d, want 2/1", d2.Len(), d2.KernelLen())
	}
	if !d2.Contains(3) || !d2.Contains(halNamespace|10) || d2.Contains(2) {
		t.Fatalf("second MergeNew elements wrong: %v", d2.Elems())
	}
	// Fully merged signal yields nothing.
	if acc.MergeNew(s2).Len() != 0 {
		t.Fatal("re-merge returned elements")
	}
	if acc.Total() != 5 || acc.KernelTotal() != 3 {
		t.Fatalf("final accumulator = %d/%d, want 5/3", acc.Total(), acc.KernelTotal())
	}
}

func TestAccumulatorHistory(t *testing.T) {
	acc := NewAccumulator()
	acc.Merge(SignalOf(1, 2))
	acc.Snapshot(10)
	acc.Merge(SignalOf(3))
	acc.Snapshot(20)
	h := acc.History()
	if len(h) != 2 {
		t.Fatalf("history = %d", len(h))
	}
	if h[0].VTime != 10 || h[0].Kernel != 2 || h[1].Kernel != 3 {
		t.Fatalf("history = %+v", h)
	}
}

func TestHALNamespaceDisjointFromKernel(t *testing.T) {
	tab := NewSpecTable(specTarget(t))
	s := FromExec(&adb.ExecResult{
		KernelCov: []uint32{0xffffffff}, // max kernel PC
		HALTrace:  []adb.TraceEvent{ev(1)},
	}, tab)
	if s.KernelLen() != 1 {
		t.Fatal("kernel/hal namespaces collided")
	}
	if s.Len() != 2 {
		t.Fatalf("signal = %d, want 2", s.Len())
	}
}
