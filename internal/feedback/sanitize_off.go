//go:build !droidfuzz_sanitize

package feedback

import "droidfuzz/internal/kcov"

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = false

// accSan is zero-sized in normal builds; the sanitize build shadows the
// accumulator's kernel bitmap with a kcov.Set and cross-verifies them
// after every merge.
type accSan struct{}

func (*accSan) observeKernelElems([]uint64) {}
func (*accSan) observeKernelPCs([]uint32)   {}
func (*accSan) verify(*kcov.Bitmap)         {}

// sanState is zero-sized and its hooks are empty in normal builds: the
// compiler inlines them away, so the pooled hot path pays nothing for the
// sanitizer's existence. Build with -tags droidfuzz_sanitize for the
// checked variant.
type sanState struct{}

func (*sanState) acquire()            {}
func (*sanState) release(_, _ string) {}
func (*sanState) alive(_ string)      {}
func sanCaller() string               { return "" }
