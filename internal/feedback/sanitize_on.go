//go:build droidfuzz_sanitize

package feedback

import (
	"fmt"
	"runtime"
)

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = true

// sanState is the checked-pool lifecycle tracker embedded in every pooled
// object when the droidfuzz_sanitize tag is set. The generation counter
// encodes liveness in its low bit: even = live (owned by a caller), odd =
// released (owned by the pool). Each release also records its call site so
// a later double-Put or use-after-put panic can name the line that gave
// the object away.
type sanState struct {
	gen   uint32
	putAt string
}

// acquire marks the object live again as it leaves the pool.
func (s *sanState) acquire() {
	if s.gen&1 == 1 {
		s.gen++
	}
	s.putAt = ""
}

// release marks the object as returned to the pool; at names the caller's
// call site (from sanCaller). A second release before a re-acquire is the
// double-Put bug the pool itself would silently absorb.
func (s *sanState) release(what, at string) {
	if s.gen&1 == 1 {
		panic(fmt.Sprintf("droidfuzz_sanitize: double-Put of %s: first released at %s, released again at %s", what, s.putAt, at))
	}
	s.gen++
	s.putAt = at
}

// alive asserts the object has not been released; what names the method
// observed touching the dead object.
func (s *sanState) alive(what string) {
	if s.gen&1 == 1 {
		panic(fmt.Sprintf("droidfuzz_sanitize: use-after-put: %s called on an object released at %s", what, s.putAt))
	}
}

// sanCaller reports the file:line of the caller's caller — the user code
// invoking Release — for the release record.
func sanCaller() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("%s:%d", file, line)
}
