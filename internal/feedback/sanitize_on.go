//go:build droidfuzz_sanitize

package feedback

import (
	"fmt"
	"runtime"
	"sync"

	"droidfuzz/internal/kcov"
)

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = true

// accSan shadows the accumulator's kernel bitmap with the historical
// map-backed kcov.Set and cross-verifies the two after every merge: the
// bitmap is a lock-free reimplementation of set semantics, and in a
// sanitize build any divergence — a lost bit, a double-counted Add — must
// stop the campaign at the merge that caused it.
type accSan struct {
	mu     sync.Mutex
	shadow kcov.Set
}

// observeKernelElems folds a signal's kernel prefix (uint64 elements below
// the HAL namespace) into the shadow set.
func (c *accSan) observeKernelElems(elems []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shadow == nil {
		c.shadow = make(kcov.Set)
	}
	for _, e := range elems {
		c.shadow[uint32(e)] = struct{}{}
	}
}

// observeKernelPCs folds a raw PC trace into the shadow set.
func (c *accSan) observeKernelPCs(pcs []uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shadow == nil {
		c.shadow = make(kcov.Set)
	}
	for _, pc := range pcs {
		c.shadow[pc] = struct{}{}
	}
}

// verify asserts Bitmap ≡ Set: identical cardinality and membership. With
// concurrent mergers the bitmap may momentarily run ahead of the shadow
// (another engine's PCs land between our shadow update and this check), so
// only PCs the shadow knows are asserted — those must all be present — and
// the bitmap count must never fall below the shadow's.
func (c *accSan) verify(b *kcov.Bitmap) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if got, want := b.Count(), c.shadow.Len(); got < want {
		panic(fmt.Sprintf("droidfuzz_sanitize: feedback.Accumulator kernel bitmap lost coverage: bitmap %d PCs < shadow set %d", got, want))
	}
	for pc := range c.shadow {
		if !b.Has(pc) {
			panic(fmt.Sprintf("droidfuzz_sanitize: feedback.Accumulator kernel bitmap missing PC %#x present in the shadow set", pc))
		}
	}
}

// sanState is the checked-pool lifecycle tracker embedded in every pooled
// object when the droidfuzz_sanitize tag is set. The generation counter
// encodes liveness in its low bit: even = live (owned by a caller), odd =
// released (owned by the pool). Each release also records its call site so
// a later double-Put or use-after-put panic can name the line that gave
// the object away.
type sanState struct {
	gen   uint32
	putAt string
}

// acquire marks the object live again as it leaves the pool.
func (s *sanState) acquire() {
	if s.gen&1 == 1 {
		s.gen++
	}
	s.putAt = ""
}

// release marks the object as returned to the pool; at names the caller's
// call site (from sanCaller). A second release before a re-acquire is the
// double-Put bug the pool itself would silently absorb.
func (s *sanState) release(what, at string) {
	if s.gen&1 == 1 {
		panic(fmt.Sprintf("droidfuzz_sanitize: double-Put of %s: first released at %s, released again at %s", what, s.putAt, at))
	}
	s.gen++
	s.putAt = at
}

// alive asserts the object has not been released; what names the method
// observed touching the dead object.
func (s *sanState) alive(what string) {
	if s.gen&1 == 1 {
		panic(fmt.Sprintf("droidfuzz_sanitize: use-after-put: %s called on an object released at %s", what, s.putAt))
	}
}

// sanCaller reports the file:line of the caller's caller — the user code
// invoking Release — for the release record.
func sanCaller() string {
	_, file, line, ok := runtime.Caller(2)
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("%s:%d", file, line)
}
