//go:build droidfuzz_sanitize

package feedback

import (
	"strings"
	"testing"
)

// mustPanic runs f and returns the panic message, failing if f returns.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
	}()
	if msg == "" {
		t.Fatal("expected a droidfuzz_sanitize panic, got none")
	}
	return msg
}

// TestSignalDoublePutPanics: releasing the same pooled signal twice must
// panic, and the message must name the call site of the first release so
// the leak is attributable without a debugger.
func TestSignalDoublePutPanics(t *testing.T) {
	s := SignalOf(1, 2, 3)
	s.Release()
	msg := mustPanic(t, func() { s.Release() })
	if !strings.Contains(msg, "double-Put") || !strings.Contains(msg, "feedback.Signal") {
		t.Fatalf("unhelpful panic message: %q", msg)
	}
	if !strings.Contains(msg, "sanitize_test.go:") {
		t.Fatalf("panic message does not name the release call site: %q", msg)
	}
}

// TestSignalUseAfterPutPanics: touching a released signal through any
// accessor must panic and name the release site.
func TestSignalUseAfterPutPanics(t *testing.T) {
	s := SignalOf(7, 9)
	s.Release()
	msg := mustPanic(t, func() { _ = s.Len() })
	if !strings.Contains(msg, "use-after-put") || !strings.Contains(msg, "feedback.Signal.Len") {
		t.Fatalf("unhelpful panic message: %q", msg)
	}
	if !strings.Contains(msg, "sanitize_test.go:") {
		t.Fatalf("panic message does not name the release call site: %q", msg)
	}

	s2 := SignalOf(1)
	s2.Release()
	for name, f := range map[string]func(){
		"Elems":    func() { _ = s2.Elems() },
		"Contains": func() { _ = s2.Contains(1) },
	} {
		msg := mustPanic(t, f)
		if !strings.Contains(msg, "use-after-put") {
			t.Fatalf("%s on released signal did not report use-after-put: %q", name, msg)
		}
	}
}

// TestSignalReuseAfterReacquireIsClean: the release→acquire cycle resets
// the lifecycle state — a legitimately recycled signal must not trip the
// sanitizer.
func TestSignalReuseAfterReacquireIsClean(t *testing.T) {
	s := SignalOf(5)
	s.Release()
	// Drain the pool until we (very likely) get the same object back; even
	// if not, every fresh acquisition must be clean.
	for i := 0; i < 16; i++ {
		n := NewSignal()
		_ = n.Len()
		n.Release()
	}
}
