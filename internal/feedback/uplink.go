package feedback

import (
	"sync"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
)

// uplinkFilter mirrors a host engine's feedback pipeline on the broker
// side of a transport connection: the same FromExec signal construction
// over the same target's spec table, folded into an accumulator. Because
// both ends observe the identical execution stream in the identical order,
// the runtime-assigned specialization IDs line up and the filter's novelty
// verdict matches what the host accumulator would compute from the full
// trace — which is what makes it safe for summary-mode batches to withhold
// the traces of executions the filter calls stale.
//
// The only intentional asymmetry: an engine running a reduced-signal
// ablation (NoHALCov) tracks less than the filter does, so the filter can
// only err on the side of shipping more — never of withholding signal the
// host still needed.
type uplinkFilter struct {
	mu    sync.Mutex
	table *SpecTable
	acc   *Accumulator
	seq   []uint32 // scratch: specialized-ID sequence, reused per Observe
}

// NewUplinkFilter returns an adb.UplinkFilter synced to engines fuzzing
// the given target; the transport server builds one per served connection
// (Server.NewFilter).
func NewUplinkFilter(target *dsl.Target) adb.UplinkFilter {
	return &uplinkFilter{table: NewSpecTable(target), acc: NewAccumulator()}
}

// Observe implements adb.UplinkFilter: fold the result into the
// accumulated view and report whether it carried new signal. It runs on
// the broker's per-frame serving path, so it takes the streaming
// observeExec route — same element derivation as FromExec, none of the
// sorted-set construction a Signal value needs.
func (f *uplinkFilter) Observe(res *adb.ExecResult) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq = f.table.appendSequence(f.seq[:0], res.HALTrace)
	return f.acc.observeExec(res.KernelCov, f.seq)
}
