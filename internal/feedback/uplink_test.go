package feedback

import (
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
)

// TestUplinkFilterMatchesSignalPipeline pins the filter's streaming
// observe path to the engine's pooled Signal path: over the same stream of
// execution results, both must produce the same per-execution novelty
// verdicts and accumulate the same totals. If either derivation drifts,
// summary-mode elision would withhold signal the host still needed.
func TestUplinkFilterMatchesSignalPipeline(t *testing.T) {
	target, err := dsl.NewTarget(drivers.TCPCDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	filter := NewUplinkFilter(target)
	table := NewSpecTable(target)
	acc := NewAccumulator()

	// A result stream with repetition, fresh PCs mid-stream, and HAL traces
	// whose n-grams mint directional elements (including runtime-assigned
	// specialization IDs).
	mkres := func(pcs []uint32, evs ...adb.TraceEvent) *adb.ExecResult {
		return &adb.ExecResult{KernelCov: pcs, HALTrace: evs}
	}
	ioctl := func(arg uint64) adb.TraceEvent {
		return adb.TraceEvent{NR: "ioctl", Path: "/dev/tcpc0", Arg: arg}
	}
	stream := []*adb.ExecResult{
		mkres([]uint32{0x10, 0x20, 0x30}, ioctl(0xa102), ioctl(0xa103)),
		mkres([]uint32{0x10, 0x20, 0x30}, ioctl(0xa102), ioctl(0xa103)), // exact repeat
		mkres([]uint32{0x10, 0x40}, ioctl(0xa103), ioctl(0xa102)),       // new PC + new order
		mkres([]uint32{0x40, 0x10}),                                     // stale PCs, no trace
		mkres(nil, ioctl(0xa102), ioctl(0xa103), ioctl(0xa102)),         // new 2-gram only
		mkres(nil, ioctl(0x9999)),                                       // runtime-assigned ID
		mkres(nil, ioctl(0x9999)),                                       // now stale
	}
	for i, res := range stream {
		got := filter.Observe(res)
		sig := FromExec(res, table)
		fresh := acc.MergeNew(sig)
		want := fresh.Len() > 0
		fresh.Release()
		sig.Release()
		if got != want {
			t.Fatalf("exec %d: filter novelty %v, signal pipeline %v", i, got, want)
		}
	}
	f := filter.(*uplinkFilter)
	if f.acc.Total() != acc.Total() || f.acc.KernelTotal() != acc.KernelTotal() {
		t.Fatalf("accumulated views diverged: filter %d/%d elements, pipeline %d/%d",
			f.acc.KernelTotal(), f.acc.Total(), acc.KernelTotal(), acc.Total())
	}
}
