// Package gen implements DroidFuzz's kernel–user relational payload
// generation (paper §IV-C): programs start from a base invocation drawn by
// vertex weight, grow along the relation graph's learned dependency edges,
// have unresolved resource arguments satisfied by inserting producer calls
// as prefixes, and are further evolved by syntax-aware mutation over the
// corpus.
package gen

import (
	"math/rand"

	"droidfuzz/internal/dsl"
	"droidfuzz/internal/relation"
)

// Options tune generation.
type Options struct {
	// NoRelations disables graph-guided dependency selection: the DF-NoRel
	// ablation generates with purely randomized dependencies.
	NoRelations bool
	// MaxLen bounds the walk length (default 8); resolution may add
	// producer calls beyond it up to HardCap.
	MaxLen int
	// StopProb is the per-step probability of ending the relation walk
	// (default 0.25).
	StopProb float64
	// InvalidResourceProb is the chance an unresolved resource argument is
	// deliberately left as an invalid handle to exercise error paths
	// (default 0.05).
	InvalidResourceProb float64
	// Epsilon is the exploration rate of relational generation: the
	// probability of drawing a uniform random call instead of following
	// vertex weights or learned edges at each step (default 0.35).
	// Exploitation without exploration over-concentrates on known chains
	// and starves argument-space diversity.
	Epsilon float64
}

// HardCap bounds total program length after producer insertion.
const HardCap = 24

func (o *Options) defaults() {
	if o.MaxLen <= 0 {
		o.MaxLen = 8
	}
	if o.StopProb <= 0 {
		o.StopProb = 0.25
	}
	if o.InvalidResourceProb <= 0 {
		o.InvalidResourceProb = 0.05
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.35
	}
}

// Generator produces and mutates programs for one target.
type Generator struct {
	target *dsl.Target
	graph  *relation.Graph
	view   *relation.Snapshot
	rng    *rand.Rand
	opts   Options
	// hasParams records whether the target carries runtime-parameter
	// descriptions. When it is false the param operators are never offered,
	// so a param-free campaign draws the exact RNG sequence it always did.
	hasParams bool
}

// New builds a generator. The graph may be shared across engines.
func New(target *dsl.Target, graph *relation.Graph, rng *rand.Rand, opts Options) *Generator {
	opts.defaults()
	return &Generator{
		target: target, graph: graph, rng: rng, opts: opts,
		hasParams: len(target.ParamCalls()) > 0,
	}
}

// Target returns the generator's description target.
func (g *Generator) Target() *dsl.Target { return g.target }

// SetView pins the relation-graph view the generator reads. With a pinned
// view, Generate and Mutate consult exactly that snapshot instead of the
// graph's live one, making generation a pure function of (view, RNG state)
// — the pipelined producer repins at deterministic sync points so a
// pipelined campaign reproduces itself regardless of goroutine scheduling.
// Passing nil unpins: the generator follows the live graph again.
func (g *Generator) SetView(s *relation.Snapshot) { g.view = s }

// snap returns the graph view generation reads from: the pinned view when
// one is set, otherwise the graph's current snapshot.
func (g *Generator) snap() *relation.Snapshot {
	if g.view != nil {
		return g.view
	}
	return g.graph.Snapshot()
}

// instantiate builds a call with randomized arguments.
func (g *Generator) instantiate(desc *dsl.CallDesc) *dsl.Call {
	c := &dsl.Call{Desc: desc, Args: make([]dsl.Arg, len(desc.Args))}
	for i, f := range desc.Args {
		c.Args[i] = dsl.RandomArg(f.Type, g.rng)
	}
	dsl.FixupLens(c)
	return c
}

// randomDesc draws a description uniformly.
func (g *Generator) randomDesc() *dsl.CallDesc {
	calls := g.target.Calls()
	if len(calls) == 0 {
		return nil
	}
	return calls[g.rng.Intn(len(calls))]
}

// pickBase draws a base invocation: with probability Epsilon a uniform
// random call (exploration), otherwise by vertex weight (exploitation).
func (g *Generator) pickBase() string {
	if g.rng.Float64() < g.opts.Epsilon {
		if d := g.randomDesc(); d != nil {
			return d.Name
		}
	}
	if base := g.snap().PickBase(g.rng); base != "" {
		return base
	}
	if d := g.randomDesc(); d != nil {
		return d.Name
	}
	return ""
}

// walk traverses the relation graph from `from`, injecting uniform random
// detours at rate Epsilon so learned chains stay mixed with fresh calls.
func (g *Generator) walk(from string, maxLen int) []string {
	// Pin one snapshot for the whole walk: every step reads the same
	// consistent view lock-free, and concurrent Learns simply land in the
	// next generation's snapshot.
	snap := g.snap()
	var path []string
	cur := from
	for len(path) < maxLen {
		if g.rng.Float64() < g.opts.StopProb {
			break
		}
		if g.rng.Float64() < g.opts.Epsilon {
			d := g.randomDesc()
			if d == nil {
				break
			}
			path = append(path, d.Name)
			cur = d.Name
			continue
		}
		step := snap.Walk(g.rng, cur, 1, 0)
		if len(step) == 0 {
			break
		}
		path = append(path, step[0])
		cur = step[0]
	}
	return path
}

// Generate produces a fresh program: base invocation by vertex weight, a
// relation-graph walk for the dependent calls (or a random tail under
// NoRelations), then producer resolution.
func (g *Generator) Generate() *dsl.Prog {
	var names []string
	maxLen := g.opts.MaxLen
	if maxLen > HardCap {
		maxLen = HardCap
	}
	n := 1 + g.rng.Intn(maxLen)
	if g.opts.NoRelations {
		// Randomized dependency generation: uniform draws.
		for i := 0; i < n; i++ {
			if d := g.randomDesc(); d != nil {
				names = append(names, d.Name)
			}
		}
	} else {
		// Relational generation fills the same length budget with
		// weighted base invocations and graph walks; multiple clusters
		// share resources through producer resolution, which is how
		// independent learned chains combine into longer
		// cross-interface interactions.
		for len(names) < n {
			base := g.pickBase()
			if base == "" {
				break
			}
			names = append(names, base)
			names = append(names, g.walk(base, n-len(names))...)
		}
	}
	p := &dsl.Prog{}
	for _, name := range names {
		d := g.target.Lookup(name)
		if d == nil {
			continue
		}
		p.Calls = append(p.Calls, g.instantiate(d))
	}
	if p.Len() == 0 {
		if d := g.randomDesc(); d != nil {
			p.Calls = append(p.Calls, g.instantiate(d))
		}
	}
	return g.Resolve(p)
}

// Resolve satisfies unresolved resource arguments: link to an earlier
// producing call when one exists, otherwise instantiate a producer call and
// insert it as a prefix (paper §IV-C: "find producer calls ... and insert
// it into the call sequence as a prefix to the current call"). It runs to a
// fixpoint so producers' own resources resolve transitively.
func (g *Generator) Resolve(p *dsl.Prog) *dsl.Prog {
	for pass := 0; pass < HardCap; pass++ {
		inserted := false
		for i := 0; i < p.Len(); i++ {
			c := p.Calls[i]
			for ai, f := range c.Desc.Args {
				if f.Type.Kind != dsl.KindResource || c.Args[ai].Ref >= 0 {
					continue
				}
				if g.rng.Float64() < g.opts.InvalidResourceProb {
					continue // keep the invalid handle on purpose
				}
				// Link to an existing earlier producer if any.
				var cands []int
				for j := 0; j < i; j++ {
					if p.Calls[j].Desc.Ret == f.Type.Res {
						cands = append(cands, j)
					}
				}
				if len(cands) > 0 {
					c.Args[ai].Ref = cands[g.rng.Intn(len(cands))]
					continue
				}
				prods := g.target.Producers(f.Type.Res)
				if len(prods) == 0 || p.Len() >= HardCap {
					continue
				}
				prod := g.instantiate(prods[g.rng.Intn(len(prods))])
				p = p.InsertCall(i, prod)
				p.Calls[i+1].Args[ai].Ref = i
				inserted = true
				break
			}
			if inserted {
				break
			}
		}
		if !inserted {
			break
		}
	}
	return p
}

// MutateOp identifies a mutation operator, exposed for stats.
type MutateOp int

// Mutation operators.
const (
	OpMutateArgs MutateOp = iota
	OpInsertCall
	OpRemoveCall
	OpSplice
	OpAppendWalk
	OpParamPrefix
)

// Mutate evolves a seed program. donor, when non-nil, enables the splice
// operator. The returned program is always freshly allocated and valid.
func (g *Generator) Mutate(seed *dsl.Prog, donor *dsl.Prog) (*dsl.Prog, MutateOp) {
	p := seed.Clone()
	ops := []MutateOp{OpMutateArgs, OpMutateArgs, OpInsertCall, OpInsertCall, OpRemoveCall}
	if donor != nil && donor.Len() > 0 {
		ops = append(ops, OpSplice)
	}
	if !g.opts.NoRelations {
		ops = append(ops, OpAppendWalk, OpAppendWalk)
	}
	if g.hasParams {
		ops = append(ops, OpParamPrefix)
	}
	op := ops[g.rng.Intn(len(ops))]
	switch op {
	case OpMutateArgs:
		p = g.mutateArgs(p)
	case OpInsertCall:
		p = g.insertCall(p)
	case OpRemoveCall:
		p = g.removeCall(p)
	case OpSplice:
		p = g.splice(p, donor)
	case OpAppendWalk:
		p = g.appendWalk(p)
	case OpParamPrefix:
		p = g.paramPrefix(p)
	}
	p = g.Resolve(p)
	for _, c := range p.Calls {
		dsl.FixupLens(c)
	}
	return p, op
}

// mutateArgs re-randomizes one or two mutable arguments of a random call.
// Resource arguments mutate by redirecting to a different earlier producer
// of the same kind — the operator that splices independently-grown clusters
// onto one shared object.
func (g *Generator) mutateArgs(p *dsl.Prog) *dsl.Prog {
	if p.Len() == 0 {
		return p
	}
	ci := g.rng.Intn(p.Len())
	c := p.Calls[ci]
	mutable := make([]int, 0, len(c.Desc.Args))
	for i, f := range c.Desc.Args {
		switch f.Type.Kind {
		case dsl.KindConst, dsl.KindLen:
		case dsl.KindResource:
			if ci > 0 {
				mutable = append(mutable, i)
			}
		default:
			mutable = append(mutable, i)
		}
	}
	if len(mutable) == 0 {
		return p
	}
	n := 1 + g.rng.Intn(2)
	for ; n > 0; n-- {
		i := mutable[g.rng.Intn(len(mutable))]
		f := c.Desc.Args[i]
		if f.Type.Kind == dsl.KindResource {
			var cands []int
			for j := 0; j < ci; j++ {
				if p.Calls[j].Desc.Ret == f.Type.Res {
					cands = append(cands, j)
				}
			}
			if len(cands) > 0 {
				c.Args[i].Ref = cands[g.rng.Intn(len(cands))]
			}
			continue
		}
		if f.Type.Kind == dsl.KindBuffer && len(c.Args[i].Data) > 0 && g.rng.Intn(2) == 0 {
			// Byte-level tweak instead of full regeneration.
			b := append([]byte(nil), c.Args[i].Data...)
			b[g.rng.Intn(len(b))] ^= byte(1 << g.rng.Intn(8))
			c.Args[i].Data = b
			continue
		}
		if f.Type.Kind == dsl.KindInt && g.rng.Intn(3) == 0 {
			// Boundary values find validation bugs.
			bounds := []uint64{f.Type.Min, f.Type.Max, 0, f.Type.Max + 1, ^uint64(0)}
			c.Args[i].Val = bounds[g.rng.Intn(len(bounds))]
			continue
		}
		c.Args[i] = dsl.RandomArg(f.Type, g.rng)
	}
	dsl.FixupLens(c)
	return p
}

// insertCall adds a call at a random position; with relations enabled, the
// call is drawn from the graph successors of its predecessor when possible.
func (g *Generator) insertCall(p *dsl.Prog) *dsl.Prog {
	if p.Len() >= HardCap {
		return p
	}
	pos := g.rng.Intn(p.Len() + 1)
	var desc *dsl.CallDesc
	if !g.opts.NoRelations && pos > 0 {
		// Snapshot successors are read-only shared storage: no per-call
		// copy, no graph lock.
		succ := g.snap().Successors(p.Calls[pos-1].Desc.Name)
		if len(succ) > 0 && g.rng.Float64() < 0.7 {
			desc = g.target.Lookup(succ[g.rng.Intn(len(succ))].To)
		}
	}
	if desc == nil {
		desc = g.randomDesc()
	}
	if desc == nil {
		return p
	}
	return p.InsertCall(pos, g.instantiate(desc))
}

// removeCall drops a random call (keeping at least one).
func (g *Generator) removeCall(p *dsl.Prog) *dsl.Prog {
	if p.Len() <= 1 {
		return p
	}
	return p.RemoveCall(g.rng.Intn(p.Len()))
}

// appendWalk extends the program with new calls: a relation-graph walk
// continuing from the final call when it has successors, otherwise a fresh
// weighted base invocation (possibly walked further). This is the
// generation-time traversal of §IV-C applied as a mutation.
func (g *Generator) appendWalk(p *dsl.Prog) *dsl.Prog {
	if p.Len() == 0 || p.Len() >= HardCap {
		return p
	}
	last := p.Calls[p.Len()-1].Desc.Name
	names := g.walk(last, 3)
	if len(names) == 0 {
		if base := g.pickBase(); base != "" {
			names = append(names, base)
			names = append(names, g.walk(base, 2)...)
		}
	}
	for _, name := range names {
		d := g.target.Lookup(name)
		if d == nil || p.Len() >= HardCap {
			continue
		}
		p.Calls = append(p.Calls, g.instantiate(d))
	}
	return p
}

// paramPrefix plants a knob write in front of a random call — the producer
// insertion of §IV-C extended to the runtime-parameter dimension. The
// relation graph's predecessor edges record which param writes historically
// ran before a call revealed coverage; replaying the strongest learned knob
// write first is what re-unlocks the gated branch. Without a learned
// dependency the operator explores with a uniformly drawn param write.
func (g *Generator) paramPrefix(p *dsl.Prog) *dsl.Prog {
	if p.Len() == 0 || p.Len() >= HardCap {
		return p
	}
	ci := g.rng.Intn(p.Len())
	var cands []*dsl.CallDesc
	var weights []float64
	var total float64
	for _, e := range g.snap().Predecessors(p.Calls[ci].Desc.Name) {
		d := g.target.Lookup(e.From)
		if d == nil || d.Class != dsl.ClassParam {
			continue
		}
		cands = append(cands, d)
		weights = append(weights, e.Weight)
		total += e.Weight
	}
	var desc *dsl.CallDesc
	if len(cands) == 0 || total <= 0 {
		params := g.target.ParamCalls()
		if len(params) == 0 {
			return p
		}
		desc = params[g.rng.Intn(len(params))]
	} else {
		x := g.rng.Float64() * total
		desc = cands[len(cands)-1]
		for i, w := range weights {
			x -= w
			if x <= 0 {
				desc = cands[i]
				break
			}
		}
	}
	return p.InsertCall(ci, g.instantiate(desc))
}

// splice appends the donor's calls (with internal references remapped)
// after a random prefix of p, truncating to HardCap.
func (g *Generator) splice(p *dsl.Prog, donor *dsl.Prog) *dsl.Prog {
	cut := g.rng.Intn(p.Len() + 1)
	out := &dsl.Prog{}
	for _, c := range p.Calls[:cut] {
		out.Calls = append(out.Calls, c.Clone())
	}
	offset := len(out.Calls)
	for _, c := range donor.Calls {
		if len(out.Calls) >= HardCap {
			break
		}
		nc := c.Clone()
		for i := range nc.Args {
			if nc.Desc.Args[i].Type.Kind == dsl.KindResource && nc.Args[i].Ref >= 0 {
				nc.Args[i].Ref += offset
			}
		}
		out.Calls = append(out.Calls, nc)
	}
	return out
}
