package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/relation"
)

func newGen(t *testing.T, seed int64, opts Options) *Generator {
	t.Helper()
	target, err := dsl.NewTarget(drivers.AllDescs()...)
	if err != nil {
		t.Fatal(err)
	}
	g := relation.New()
	for _, d := range target.Calls() {
		g.AddVertex(d.Name, d.Weight)
	}
	return New(target, g, rand.New(rand.NewSource(seed)), opts)
}

func TestGenerateProducesValidPrograms(t *testing.T) {
	f := func(seed int64) bool {
		g := newGen(t, seed, Options{})
		for i := 0; i < 30; i++ {
			p := g.Generate()
			if p.Len() == 0 || p.Len() > HardCap {
				return false
			}
			if err := p.Validate(); err != nil {
				t.Logf("invalid: %v\n%s", err, p.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateNoRelationsValid(t *testing.T) {
	g := newGen(t, 3, Options{NoRelations: true})
	for i := 0; i < 100; i++ {
		if err := g.Generate().Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestResolveInsertsProducers(t *testing.T) {
	g := newGen(t, 4, Options{InvalidResourceProb: 1e-12})
	target := g.Target()
	ioctl := target.Lookup("ioctl$GPU_SUBMIT")
	// A bare GPU_SUBMIT needs fd_gpu and gpu_handle producers.
	p := &dsl.Prog{Calls: []*dsl.Call{g.instantiate(ioctl)}}
	p = g.Resolve(p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() < 3 {
		t.Fatalf("producers not inserted:\n%s", p.String())
	}
	// The submit call must be last, with both resources linked.
	last := p.Calls[p.Len()-1]
	if last.Desc.Name != "ioctl$GPU_SUBMIT" {
		t.Fatalf("submit not last:\n%s", p.String())
	}
	if last.Args[0].Ref < 0 || last.Args[2].Ref < 0 {
		t.Fatalf("resources unresolved:\n%s", p.String())
	}
	// And the producer chain grounds out at an open.
	if p.Calls[0].Desc.Syscall != "open" {
		t.Fatalf("chain not grounded:\n%s", p.String())
	}
}

func TestResolveReusesEarlierProducers(t *testing.T) {
	g := newGen(t, 5, Options{InvalidResourceProb: 1e-12})
	target := g.Target()
	open := target.Lookup("open$gpu")
	ioctl := target.Lookup("ioctl$GPU_ALLOC")
	p := &dsl.Prog{Calls: []*dsl.Call{
		g.instantiate(open),
		g.instantiate(ioctl),
	}}
	p = g.Resolve(p)
	if p.Len() != 2 {
		t.Fatalf("unnecessary producer inserted:\n%s", p.String())
	}
	if p.Calls[1].Args[0].Ref != 0 {
		t.Fatal("existing producer not reused")
	}
}

func TestMutateKeepsValidity(t *testing.T) {
	f := func(seed int64) bool {
		g := newGen(t, seed, Options{})
		p := g.Generate()
		donor := g.Generate()
		for i := 0; i < 40; i++ {
			q, _ := g.Mutate(p, donor)
			if err := q.Validate(); err != nil {
				t.Logf("op produced invalid prog: %v\n%s", err, q.String())
				return false
			}
			if q.Len() == 0 || q.Len() > HardCap {
				return false
			}
			p = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestMutateDoesNotAliasSeed(t *testing.T) {
	g := newGen(t, 6, Options{})
	p := g.Generate()
	before := p.String()
	for i := 0; i < 50; i++ {
		g.Mutate(p, nil)
	}
	if p.String() != before {
		t.Fatal("mutation modified the seed program")
	}
}

func TestSpliceRemapsReferences(t *testing.T) {
	g := newGen(t, 7, Options{})
	target := g.Target()
	mk := func() *dsl.Prog {
		p := &dsl.Prog{Calls: []*dsl.Call{g.instantiate(target.Lookup("ioctl$GPU_MAP"))}}
		return g.Resolve(p)
	}
	a, b := mk(), mk()
	out := g.splice(a.Clone(), b)
	if err := out.Validate(); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
}

func TestAppendWalkGrowsProgram(t *testing.T) {
	g := newGen(t, 8, Options{})
	// Teach the graph one strong chain.
	g.graph.Learn("open$gpu", "ioctl$GPU_ALLOC")
	g.graph.Learn("ioctl$GPU_ALLOC", "ioctl$GPU_SUBMIT")
	p := &dsl.Prog{Calls: []*dsl.Call{g.instantiate(g.Target().Lookup("open$gpu"))}}
	grew := false
	for i := 0; i < 50 && !grew; i++ {
		q := g.appendWalk(p.Clone())
		if q.Len() > p.Len() {
			grew = true
		}
	}
	if !grew {
		t.Fatal("appendWalk never grew the program")
	}
}

func TestGenerateUsesLearnedRelations(t *testing.T) {
	g := newGen(t, 9, Options{StopProb: 0.01})
	// Strongly connect a rarely-taken pair and verify it shows up in
	// generated programs more often than chance.
	g.graph.Learn("ioctl$NFC_POWER", "ioctl$NFC_RAW_XFER")
	pairs := 0
	for i := 0; i < 600; i++ {
		p := g.Generate()
		for j := 1; j < p.Len(); j++ {
			if p.Calls[j-1].Desc.Name == "ioctl$NFC_POWER" &&
				p.Calls[j].Desc.Name == "ioctl$NFC_RAW_XFER" {
				pairs++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("learned relation never exercised")
	}
}

func TestHardCapRespected(t *testing.T) {
	g := newGen(t, 10, Options{MaxLen: 100})
	for i := 0; i < 50; i++ {
		if p := g.Generate(); p.Len() > HardCap {
			t.Fatalf("len = %d", p.Len())
		}
	}
}
