package hal

import (
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
)

// AudioDescriptor is the audio HAL's Binder descriptor.
const AudioDescriptor = "android.hardware.audio"

type audioStream struct {
	id      uint64
	started bool
}

// Audio is the primary audio HAL: output-stream management over the PCM
// driver using the validated (non-low-latency) configuration path.
type Audio struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu       sync.Mutex
	pcmFD    int
	streams  map[uint64]*audioStream
	nextID   uint64
	volume   uint64
	routings uint64
}

// NewAudio constructs the audio HAL over the given syscall facade.
func NewAudio(sys *Sys, b bugs.Set) *Audio {
	a := &Audio{
		Base:    NewBase(AudioDescriptor, "Audio"),
		sys:     sys,
		bugs:    b,
		pcmFD:   -1,
		streams: make(map[uint64]*audioStream),
		nextID:  1,
	}
	a.Register(sig("openOutput", "hal_audio",
		argFlags("rate", 8000, 16000, 44100, 48000, 96000),
		argInt("channels", 1, 8)), a.openOutput)
	a.Register(sig("writeAudio", "",
		argRes("stream", "hal_audio"), argBuf("frames", 1024)), a.writeAudio)
	a.Register(sig("setVolume", "",
		argInt("volume", 0, 100)), a.setVolume)
	a.Register(sig("standby", "",
		argRes("stream", "hal_audio")), a.standby)
	a.Register(sig("getPosition", "",
		argRes("stream", "hal_audio")), a.getPosition)
	a.RegisterDiagnostics()
	return a
}

func (a *Audio) fd() (int, binder.Status) {
	if a.pcmFD >= 0 {
		return a.pcmFD, binder.StatusOK
	}
	fd, err := a.sys.Open(drivers.PathPCM, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	a.pcmFD = fd
	return fd, binder.StatusOK
}

func (a *Audio) openOutput(in []Val, reply *binder.Parcel) binder.Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	fd, st := a.fd()
	if st != binder.StatusOK {
		return st
	}
	arg := drivers.PutU64(nil, in[0].U) // rate
	arg = drivers.PutU64(arg, in[1].U)  // channels
	arg = drivers.PutU64(arg, 1024)     // period
	arg = drivers.PutU64(arg, 0)        // flags: validated path
	if _, _, err := a.sys.Ioctl(fd, drivers.PCMHwParams, arg); err != nil {
		return binder.StatusBadValue
	}
	if _, _, err := a.sys.Ioctl(fd, drivers.PCMPrepare, nil); err != nil {
		return binder.StatusFailed
	}
	id := a.nextID
	a.nextID++
	a.streams[id] = &audioStream{id: id}
	reply.WriteUint64(id)
	return binder.StatusOK
}

func (a *Audio) writeAudio(in []Val, reply *binder.Parcel) binder.Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.streams[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	if len(in[1].B) == 0 {
		return binder.StatusBadValue
	}
	fd, st := a.fd()
	if st != binder.StatusOK {
		return st
	}
	if !s.started {
		if _, _, err := a.sys.Ioctl(fd, drivers.PCMStart, nil); err != nil {
			return binder.StatusFailed
		}
		s.started = true
	}
	if _, err := a.sys.Write(fd, in[1].B); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (a *Audio) setVolume(in []Val, reply *binder.Parcel) binder.Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	fd, st := a.fd()
	if st != binder.StatusOK {
		return st
	}
	a.volume = in[0].U
	if _, _, err := a.sys.Ioctl(fd, drivers.PCMSetVol, drivers.PutU64(nil, in[0].U)); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

func (a *Audio) standby(in []Val, reply *binder.Parcel) binder.Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.streams[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	if !s.started {
		return binder.StatusOK
	}
	fd, st := a.fd()
	if st != binder.StatusOK {
		return st
	}
	_, _, _ = a.sys.Ioctl(fd, drivers.PCMStop, nil)
	s.started = false
	return binder.StatusOK
}

func (a *Audio) getPosition(in []Val, reply *binder.Parcel) binder.Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.streams[in[0].U]; !ok {
		return binder.StatusBadValue
	}
	fd, st := a.fd()
	if st != binder.StatusOK {
		return st
	}
	_, out, err := a.sys.Ioctl(fd, drivers.PCMGetPos, nil)
	if err != nil {
		return binder.StatusFailed
	}
	reply.WriteUint64(drivers.ArgU64(out, 0))
	return binder.StatusOK
}
