package hal

import (
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
)

// CameraDescriptor is the camera provider's Binder descriptor.
const CameraDescriptor = "android.hardware.camera.provider"

// ctrlRotation is the V4L2 control id the provider uses for sensor rotation;
// odd rotations take the buggy buffer-release path at stream stop.
const ctrlRotation = 13

type stream struct {
	id        uint64
	rotation  uint64
	capturing bool
}

// Camera is the camera provider HAL over the V4L2 capture device. Bug №9:
// stopping a capture with an odd rotation configured releases the result
// buffer early; a subsequent captureFrame dereferences it and the process
// segfaults.
type Camera struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu         sync.Mutex
	videoFD    int
	streams    map[uint64]*stream
	nextStream uint64
}

// NewCamera constructs the camera provider over the given syscall facade.
func NewCamera(sys *Sys, b bugs.Set) *Camera {
	c := &Camera{
		Base:       NewBase(CameraDescriptor, "Camera"),
		sys:        sys,
		bugs:       b,
		videoFD:    -1,
		streams:    make(map[uint64]*stream),
		nextStream: 1,
	}
	c.Register(sig("openStream", "hal_stream",
		argFlags("width", 640, 1280, 1920, 3840),
		argFlags("height", 480, 720, 1080, 2160),
		argFlags("format", drivers.PixFmtYUYV, drivers.PixFmtNV12, drivers.PixFmtMJPG)), c.openStream)
	c.Register(sig("startCapture", "",
		argRes("stream", "hal_stream")), c.startCapture)
	c.Register(sig("captureFrame", "",
		argRes("stream", "hal_stream")), c.captureFrame)
	c.Register(sig("stopCapture", "",
		argRes("stream", "hal_stream")), c.stopCapture)
	c.Register(sig("setParameter", "",
		argRes("stream", "hal_stream"),
		argInt("id", 1, 64), argInt("value", 0, 1<<16)), c.setParameter)
	c.Register(sig("closeStream", "",
		argRes("stream", "hal_stream")), c.closeStream)
	c.RegisterDiagnostics()
	return c
}

func (c *Camera) fd() (int, binder.Status) {
	if c.videoFD >= 0 {
		return c.videoFD, binder.StatusOK
	}
	fd, err := c.sys.Open(drivers.PathVideo, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	c.videoFD = fd
	return fd, binder.StatusOK
}

func (c *Camera) openStream(in []Val, reply *binder.Parcel) binder.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	fd, st := c.fd()
	if st != binder.StatusOK {
		return st
	}
	arg := drivers.PutU64(nil, in[0].U)
	arg = drivers.PutU64(arg, in[1].U)
	arg = drivers.PutU64(arg, in[2].U)
	if _, _, err := c.sys.Ioctl(fd, drivers.VidiocSFmt, arg); err != nil {
		return binder.StatusBadValue
	}
	if _, _, err := c.sys.Ioctl(fd, drivers.VidiocReqbufs, drivers.PutU64(nil, 4)); err != nil {
		return binder.StatusFailed
	}
	for i := uint64(0); i < 4; i++ {
		_, _, _ = c.sys.Ioctl(fd, drivers.VidiocQbuf, drivers.PutU64(nil, i))
	}
	id := c.nextStream
	c.nextStream++
	c.streams[id] = &stream{id: id}
	reply.WriteUint64(id)
	return binder.StatusOK
}

func (c *Camera) startCapture(in []Val, reply *binder.Parcel) binder.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.streams[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	fd, st := c.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := c.sys.Ioctl(fd, drivers.VidiocStreamon, nil); err != nil {
		return binder.StatusFailed
	}
	s.capturing = true
	return binder.StatusOK
}

func (c *Camera) captureFrame(in []Val, reply *binder.Parcel) binder.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.streams[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	if !s.capturing {
		return binder.StatusBadValue
	}
	fd, st := c.fd()
	if st != binder.StatusOK {
		return st
	}
	idx, _, err := c.sys.Ioctl(fd, drivers.VidiocDqbuf, nil)
	if err != nil {
		return binder.StatusFailed
	}
	_, _, _ = c.sys.Ioctl(fd, drivers.VidiocQbuf, drivers.PutU64(nil, idx))
	reply.WriteUint64(idx)
	return binder.StatusOK
}

func (c *Camera) stopCapture(in []Val, reply *binder.Parcel) binder.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.streams[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	fd, st := c.fd()
	if st != binder.StatusOK {
		return st
	}
	_, _, _ = c.sys.Ioctl(fd, drivers.VidiocStreamoff, nil)
	s.capturing = false
	return binder.StatusOK
}

// transposed reports whether a rotation value swaps width and height
// (90°, 270°, ...), the layouts with a dedicated result-buffer path.
func transposed(val uint64) bool { return (val/90)%2 == 1 }

func (c *Camera) setParameter(in []Val, reply *binder.Parcel) binder.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.streams[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	fd, st := c.fd()
	if st != binder.StatusOK {
		return st
	}
	id, val := in[1].U, in[2].U
	arg := drivers.PutU64(nil, id)
	arg = drivers.PutU64(arg, val)
	if _, _, err := c.sys.Ioctl(fd, drivers.VidiocSCtrl, arg); err != nil {
		return binder.StatusBadValue
	}
	if id == ctrlRotation {
		s.rotation = val
		// Bug №9: switching to a transposed rotation mid-capture makes
		// the blob release the in-flight result buffer under the still-
		// running capture thread, which faults on its next frame. The
		// framework always rotates before starting the stream, so only a
		// reordered sequence reaches the buggy path.
		if c.bugs.Has(bugs.CameraHALCrash) && s.capturing && transposed(val) {
			c.segfault("CameraProvider::processCaptureResult")
		}
	}
	return binder.StatusOK
}

func (c *Camera) closeStream(in []Val, reply *binder.Parcel) binder.Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.streams[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	if s.capturing {
		if fd, st := c.fd(); st == binder.StatusOK {
			_, _, _ = c.sys.Ioctl(fd, drivers.VidiocStreamoff, nil)
		}
	}
	delete(c.streams, s.id)
	return binder.StatusOK
}
