package hal

import (
	"fmt"

	"droidfuzz/internal/binder"
)

// Framework models the Android framework layer the probing pass exercises:
// a small set of high-level API operations (render a frame, play a clip,
// take a picture, ...) that each fan out into realistic HAL interface
// sequences. The probing pass runs these operations and counts which HAL
// interfaces they trigger to compute the normalized-occurrence weights of
// paper §IV-B.
type Framework struct {
	sm *binder.ServiceManager
}

// NewFramework wraps the device's ServiceManager.
func NewFramework(sm *binder.ServiceManager) *Framework {
	return &Framework{sm: sm}
}

// Op is one high-level framework operation.
type Op struct {
	Name string
	Run  func() error
}

// call looks up the method code for the named method via reflection, builds
// the parcel from the marshal funcs, and transacts — the way framework
// client stubs call into a HAL.
func (f *Framework) call(desc, methodName string, marshal func(*binder.Parcel)) (*binder.Parcel, error) {
	reflIn, reflOut := binder.NewParcel(), binder.NewParcel()
	if st := f.sm.Call(desc, binder.InterfaceTransaction, reflIn, reflOut); st != binder.StatusOK {
		return nil, fmt.Errorf("hal: reflect %s: %v", desc, st)
	}
	methods, err := binder.UnmarshalMethods(reflOut)
	if err != nil {
		return nil, fmt.Errorf("hal: reflect %s: %w", desc, err)
	}
	var code uint32
	found := false
	for _, m := range methods {
		if m.Name == methodName {
			code = m.Code
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("hal: %s has no method %q", desc, methodName)
	}
	in, out := binder.NewParcel(), binder.NewParcel()
	if marshal != nil {
		marshal(in)
	}
	if st := f.sm.Call(desc, code, in, out); st != binder.StatusOK {
		return nil, fmt.Errorf("hal: %s.%s: %v", desc, methodName, st)
	}
	return out, nil
}

// u64Reply extracts a handle from a method reply.
func u64Reply(p *binder.Parcel) uint64 {
	v, err := p.ReadUint64()
	if err != nil {
		return 0
	}
	return v
}

// Ops returns the framework operations available on this device, filtered
// to services that are actually registered.
func (f *Framework) Ops() []Op {
	all := []struct {
		desc string
		op   Op
	}{
		{GraphicsDescriptor, Op{Name: "render_frame", Run: f.renderFrame}},
		{MediaDescriptor, Op{Name: "play_media", Run: f.playMedia}},
		{CameraDescriptor, Op{Name: "take_picture", Run: f.takePicture}},
		{AudioDescriptor, Op{Name: "play_tone", Run: f.playTone}},
		{BluetoothDescriptor, Op{Name: "bt_pair", Run: f.btPair}},
		{NFCDescriptor, Op{Name: "nfc_tap", Run: f.nfcTap}},
		{SensorsDescriptor, Op{Name: "read_sensors", Run: f.readSensors}},
		{USBDescriptor, Op{Name: "usb_charge", Run: f.usbCharge}},
		{ThermalDescriptor, Op{Name: "thermal_poll", Run: f.thermalPoll}},
		{InputDescriptor, Op{Name: "touch_swipe", Run: f.touchSwipe}},
	}
	var ops []Op
	for _, e := range all {
		if f.sm.Get(e.desc) != nil {
			ops = append(ops, e.op)
		}
	}
	return ops
}

func (f *Framework) renderFrame() error {
	out, err := f.call(GraphicsDescriptor, "createLayer", func(p *binder.Parcel) {
		p.WriteUint64(1280)
		p.WriteUint64(720)
		p.WriteUint64(1)
	})
	if err != nil {
		return err
	}
	id := u64Reply(out)
	if _, err := f.call(GraphicsDescriptor, "setLayerBuffer", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteUint64(0)
	}); err != nil {
		return err
	}
	if _, err := f.call(GraphicsDescriptor, "presentDisplay", nil); err != nil {
		return err
	}
	_, err = f.call(GraphicsDescriptor, "destroyLayer", func(p *binder.Parcel) {
		p.WriteUint64(id)
	})
	return err
}

func (f *Framework) playMedia() error {
	out, err := f.call(MediaDescriptor, "createCodec", func(p *binder.Parcel) {
		p.WriteString("audio/aac")
		p.WriteUint64(0)
		p.WriteUint64(1024)
	})
	if err != nil {
		return err
	}
	id := u64Reply(out)
	for i := 0; i < 2; i++ {
		if _, err := f.call(MediaDescriptor, "queueBuffer", func(p *binder.Parcel) {
			p.WriteUint64(id)
			p.WriteBytes(make([]byte, 256))
		}); err != nil {
			return err
		}
	}
	// A seek flushes the codec, then playback resumes.
	if _, err := f.call(MediaDescriptor, "flush", func(p *binder.Parcel) {
		p.WriteUint64(id)
	}); err != nil {
		return err
	}
	if _, err := f.call(MediaDescriptor, "queueBuffer", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteBytes(make([]byte, 128))
	}); err != nil {
		return err
	}
	if _, err := f.call(MediaDescriptor, "drain", func(p *binder.Parcel) {
		p.WriteUint64(id)
	}); err != nil {
		return err
	}
	_, err = f.call(MediaDescriptor, "releaseCodec", func(p *binder.Parcel) {
		p.WriteUint64(id)
	})
	return err
}

func (f *Framework) takePicture() error {
	out, err := f.call(CameraDescriptor, "openStream", func(p *binder.Parcel) {
		p.WriteUint64(1280)
		p.WriteUint64(720)
		p.WriteUint64(0x3231564e) // NV12
	})
	if err != nil {
		return err
	}
	id := u64Reply(out)
	// Portrait orientation: the framework always programs the sensor
	// rotation before capture.
	if _, err := f.call(CameraDescriptor, "setParameter", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteUint64(13) // rotation control
		p.WriteUint64(90)
	}); err != nil {
		return err
	}
	if _, err := f.call(CameraDescriptor, "startCapture", func(p *binder.Parcel) {
		p.WriteUint64(id)
	}); err != nil {
		return err
	}
	if _, err := f.call(CameraDescriptor, "captureFrame", func(p *binder.Parcel) {
		p.WriteUint64(id)
	}); err != nil {
		return err
	}
	// Auto-exposure retunes the sensor continuously while capturing.
	if _, err := f.call(CameraDescriptor, "setParameter", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteUint64(7) // exposure control
		p.WriteUint64(50)
	}); err != nil {
		return err
	}
	if _, err := f.call(CameraDescriptor, "captureFrame", func(p *binder.Parcel) {
		p.WriteUint64(id)
	}); err != nil {
		return err
	}
	if _, err := f.call(CameraDescriptor, "stopCapture", func(p *binder.Parcel) {
		p.WriteUint64(id)
	}); err != nil {
		return err
	}
	_, err = f.call(CameraDescriptor, "closeStream", func(p *binder.Parcel) {
		p.WriteUint64(id)
	})
	return err
}

func (f *Framework) playTone() error {
	out, err := f.call(AudioDescriptor, "openOutput", func(p *binder.Parcel) {
		p.WriteUint64(48000)
		p.WriteUint64(2)
	})
	if err != nil {
		return err
	}
	id := u64Reply(out)
	for i := 0; i < 2; i++ {
		if _, err := f.call(AudioDescriptor, "writeAudio", func(p *binder.Parcel) {
			p.WriteUint64(id)
			p.WriteBytes(make([]byte, 512))
		}); err != nil {
			return err
		}
	}
	_, err = f.call(AudioDescriptor, "standby", func(p *binder.Parcel) {
		p.WriteUint64(id)
	})
	return err
}

func (f *Framework) btPair() error {
	if _, err := f.call(BluetoothDescriptor, "enable", nil); err != nil {
		return err
	}
	if _, err := f.call(BluetoothDescriptor, "startDiscovery", func(p *binder.Parcel) {
		p.WriteUint64(3)
	}); err != nil {
		return err
	}
	out, err := f.call(BluetoothDescriptor, "connect", func(p *binder.Parcel) {
		p.WriteUint64(0x42)
	})
	if err != nil {
		return err
	}
	handle := u64Reply(out)
	if _, err := f.call(BluetoothDescriptor, "acceptConnection", nil); err != nil {
		return err
	}
	if _, err := f.call(BluetoothDescriptor, "disconnect", func(p *binder.Parcel) {
		p.WriteUint64(handle)
	}); err != nil {
		return err
	}
	_, err = f.call(BluetoothDescriptor, "disable", nil)
	return err
}

func (f *Framework) nfcTap() error {
	if _, err := f.call(NFCDescriptor, "enable", nil); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := f.call(NFCDescriptor, "transceive", func(p *binder.Parcel) {
			p.WriteBytes([]byte{0x00, 0xa4, 0x04, 0x00})
		}); err != nil {
			return err
		}
	}
	_, err := f.call(NFCDescriptor, "disable", nil)
	return err
}

func (f *Framework) readSensors() error {
	if _, err := f.call(SensorsDescriptor, "activate", func(p *binder.Parcel) {
		p.WriteUint64(0)
		p.WriteUint64(1)
	}); err != nil {
		return err
	}
	if _, err := f.call(SensorsDescriptor, "batch", func(p *binder.Parcel) {
		p.WriteUint64(0)
		p.WriteUint64(100)
	}); err != nil {
		return err
	}
	if _, err := f.call(SensorsDescriptor, "poll", nil); err != nil {
		return err
	}
	_, err := f.call(SensorsDescriptor, "activate", func(p *binder.Parcel) {
		p.WriteUint64(0)
		p.WriteUint64(0)
	})
	return err
}

func (f *Framework) usbCharge() error {
	if _, err := f.call(USBDescriptor, "setPortRole", func(p *binder.Parcel) {
		p.WriteUint64(1) // sink
	}); err != nil {
		return err
	}
	if _, err := f.call(USBDescriptor, "enableContract", func(p *binder.Parcel) {
		p.WriteUint64(5000)
	}); err != nil {
		return err
	}
	_, err := f.call(USBDescriptor, "queryPortStatus", nil)
	return err
}

func (f *Framework) touchSwipe() error {
	if _, err := f.call(InputDescriptor, "setMode", func(p *binder.Parcel) {
		p.WriteUint64(1) // finger reporting
	}); err != nil {
		return err
	}
	if _, err := f.call(InputDescriptor, "injectSwipe", func(p *binder.Parcel) {
		p.WriteUint64(100)
		p.WriteUint64(400)
		p.WriteUint64(4)
	}); err != nil {
		return err
	}
	_, err := f.call(InputDescriptor, "selfTest", nil)
	return err
}

func (f *Framework) thermalPoll() error {
	for zone := uint64(0); zone < 2; zone++ {
		if _, err := f.call(ThermalDescriptor, "getTemperature", func(p *binder.Parcel) {
			p.WriteUint64(zone)
		}); err != nil {
			return err
		}
	}
	_, err := f.call(ThermalDescriptor, "setPolicy", func(p *binder.Parcel) {
		p.WriteUint64(1)
	})
	return err
}
