package hal

import (
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
)

// GraphicsDescriptor is the composer service's Binder descriptor.
const GraphicsDescriptor = "android.hardware.graphics.composer"

type layer struct {
	id     uint64
	buf    uint64 // kernel gpu_handle backing the layer
	w, h   uint64
	format uint64
}

// Graphics is the display composer HAL. It owns the GPU render node and
// translates layer management into buffer-object and command-stream
// syscalls. Two defects live on its paths:
//
//   - Bug №2 (enabled per device): destroyLayer leaves the layer id on the
//     presentation list; the next presentDisplay dereferences the stale
//     entry and the process segfaults.
//   - The kernel lockdep bug №3 is reached through presentDisplay: the
//     command stream's nesting depth equals the presentation list length,
//     so composing 8+ layers drives an invalid lockdep subclass into the
//     GPU driver.
type Graphics struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu        sync.Mutex
	gpuFD     int
	layers    map[uint64]*layer
	present   []uint64
	nextLayer uint64
	powerMode uint64
}

// NewGraphics constructs the composer service over the given syscall facade.
func NewGraphics(sys *Sys, b bugs.Set) *Graphics {
	g := &Graphics{
		Base:      NewBase(GraphicsDescriptor, "Graphics"),
		sys:       sys,
		bugs:      b,
		gpuFD:     -1,
		layers:    make(map[uint64]*layer),
		nextLayer: 1,
	}
	g.Register(sig("createLayer", "hal_layer",
		argInt("width", 1, 4096), argInt("height", 1, 4096),
		argFlags("format", 1, 2, 3)), g.createLayer)
	g.Register(sig("destroyLayer", "",
		argRes("layer", "hal_layer")), g.destroyLayer)
	g.Register(sig("setLayerBuffer", "",
		argRes("layer", "hal_layer"), argInt("slot", 0, 7)), g.setLayerBuffer)
	g.Register(sig("presentDisplay", ""), g.presentDisplay)
	g.Register(sig("setPowerMode", "",
		argFlags("mode", 0, 1, 2, 3)), g.setPowerMode)
	g.Register(sig("getDisplayAttribute", "",
		argInt("attribute", 1, 3)), g.getDisplayAttribute)
	g.RegisterDiagnostics()
	return g
}

// fd returns the composer's render-node fd, opening it on first use.
func (g *Graphics) fd() (int, binder.Status) {
	if g.gpuFD >= 0 {
		return g.gpuFD, binder.StatusOK
	}
	fd, err := g.sys.Open(drivers.PathGPU, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	g.gpuFD = fd
	return fd, binder.StatusOK
}

func (g *Graphics) createLayer(in []Val, reply *binder.Parcel) binder.Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	fd, st := g.fd()
	if st != binder.StatusOK {
		return st
	}
	w, h := in[0].U, in[1].U
	if w == 0 || h == 0 || w > 4096 || h > 4096 {
		return binder.StatusBadValue
	}
	size := w * h * 4
	if size > 1<<24 {
		size = 1 << 24
	}
	handle, _, err := g.sys.Ioctl(fd, drivers.GPUAlloc, drivers.PutU64(nil, size))
	if err != nil {
		return binder.StatusFailed
	}
	id := g.nextLayer
	g.nextLayer++
	g.layers[id] = &layer{id: id, buf: handle, w: w, h: h, format: in[2].U}
	g.present = append(g.present, id)
	reply.WriteUint64(id)
	return binder.StatusOK
}

func (g *Graphics) destroyLayer(in []Val, reply *binder.Parcel) binder.Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := in[0].U
	l, ok := g.layers[id]
	if !ok {
		return binder.StatusBadValue
	}
	fd, st := g.fd()
	if st != binder.StatusOK {
		return st
	}
	_, _, _ = g.sys.Ioctl(fd, drivers.GPUFree, drivers.PutU64(nil, l.buf))
	delete(g.layers, id)
	if !g.bugs.Has(bugs.GraphicsHALCrash) {
		// Correct builds unlink the layer from the presentation list;
		// the buggy vendor blob forgets, leaving a dangling entry.
		for i, pid := range g.present {
			if pid == id {
				g.present = append(g.present[:i], g.present[i+1:]...)
				break
			}
		}
	}
	return binder.StatusOK
}

func (g *Graphics) setLayerBuffer(in []Val, reply *binder.Parcel) binder.Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	l, ok := g.layers[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	fd, st := g.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := g.sys.Ioctl(fd, drivers.GPUMapBuf, drivers.PutU64(nil, l.buf)); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (g *Graphics) presentDisplay(in []Val, reply *binder.Parcel) binder.Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.present) == 0 {
		return binder.StatusBadValue
	}
	fd, st := g.fd()
	if st != binder.StatusOK {
		return st
	}
	depth := uint64(len(g.present))
	if depth > 15 {
		depth = 15
	}
	var first *layer
	nCmds := len(g.present) * 2
	if nCmds > 16 {
		nCmds = 16
	}
	magic := drivers.GPUCmdMagic
	stream := []byte{
		byte(magic), byte(magic >> 8), byte(magic >> 16), byte(magic >> 24),
		byte(depth), byte(nCmds), 0, 0,
	}
	for _, id := range g.present {
		l := g.layers[id]
		if l == nil {
			// Dangling presentation-list entry (bug №2): the composer
			// dereferences freed layer state and faults.
			g.segfault("composer_present_locked")
		}
		if first == nil {
			first = l
		}
		// Two command words per layer: a blit sized by width and a
		// format-conversion op.
		stream = append(stream, byte(l.w/256), byte(0x40+l.format*4+l.h/1024))
	}
	fence, _, err := g.sys.Ioctl(fd, drivers.GPUSubmit,
		append(drivers.PutU64(nil, first.buf), stream...))
	if err != nil {
		return binder.StatusFailed
	}
	_, _, _ = g.sys.Ioctl(fd, drivers.GPUWait, drivers.PutU64(nil, fence))
	reply.WriteUint64(fence)
	return binder.StatusOK
}

func (g *Graphics) setPowerMode(in []Val, reply *binder.Parcel) binder.Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	fd, st := g.fd()
	if st != binder.StatusOK {
		return st
	}
	g.powerMode = in[0].U
	if _, _, err := g.sys.Ioctl(fd, drivers.GPUSetCtx, drivers.PutU64(nil, in[0].U&3)); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (g *Graphics) getDisplayAttribute(in []Val, reply *binder.Parcel) binder.Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	fd, st := g.fd()
	if st != binder.StatusOK {
		return st
	}
	v, _, err := g.sys.Ioctl(fd, drivers.GPUGetParam, drivers.PutU64(nil, in[0].U))
	if err != nil {
		return binder.StatusBadValue
	}
	reply.WriteUint64(v)
	return binder.StatusOK
}
