// Package hal implements the vendor HAL service layer of the virtual
// devices. Each service is a stateful, "closed-source" module: the fuzzer
// never inspects its internals, only its Binder surface (discovered by the
// probing pass) and the kernel syscall trace it produces (observed via the
// eBPF layer). Services translate high-level interface invocations into
// realistic multi-step syscall sequences against the kernel drivers, which
// is precisely the behavior that makes joint HAL+kernel fuzzing reach
// driver states a syscall-only fuzzer cannot (paper §III).
//
// Three services carry the injected Table II HAL bugs (№2 graphics,
// №6 media, №9 camera), modeled as native crashes: the service panics, the
// hosting Process recovers, marks itself dead, and reports the crash.
package hal

import (
	"fmt"
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/snap"
	"droidfuzz/internal/vkernel"
)

// Sys is the syscall facade a HAL service process uses: every call enters
// the kernel tagged with the service's PID and OriginHAL, which is what the
// cross-boundary feedback observes.
type Sys struct {
	K   *vkernel.Kernel
	PID int
}

// Open opens a device path.
func (s *Sys) Open(path string, flags uint64) (int, error) {
	return s.K.Open(s.PID, vkernel.OriginHAL, path, flags)
}

// Close releases an fd.
func (s *Sys) Close(fd int) error {
	return s.K.Close(s.PID, vkernel.OriginHAL, fd)
}

// Ioctl issues an ioctl.
func (s *Sys) Ioctl(fd int, req uint64, arg []byte) (uint64, []byte, error) {
	return s.K.Ioctl(s.PID, vkernel.OriginHAL, fd, req, arg)
}

// Read reads from an fd.
func (s *Sys) Read(fd int, n int) ([]byte, error) {
	return s.K.Read(s.PID, vkernel.OriginHAL, fd, n)
}

// Write writes to an fd.
func (s *Sys) Write(fd int, p []byte) (int, error) {
	return s.K.Write(s.PID, vkernel.OriginHAL, fd, p)
}

// Mmap maps device memory.
func (s *Sys) Mmap(fd int, length uint64) (uint64, error) {
	return s.K.Mmap(s.PID, vkernel.OriginHAL, fd, length)
}

// Val is one decoded transaction argument; the populated field follows the
// method signature's Kind.
type Val struct {
	U uint64
	B []byte
	S string
}

// Handler processes a decoded transaction. Returning a non-OK status maps
// to a Binder error reply; panicking models a native crash in the service.
type Handler func(in []Val, reply *binder.Parcel) binder.Status

type method struct {
	sig binder.MethodSig
	h   Handler
}

// Base provides method registration, reflection, and transaction dispatch
// for concrete services; they embed it and register handlers at
// construction.
type Base struct {
	descriptor string
	label      string // human label: "Graphics", "Media", ...
	mu         sync.Mutex
	methods    []*method
	byCode     map[uint32]*method
	nextCode   uint32
}

// NewBase returns a service base with the given Binder descriptor and human
// label.
func NewBase(descriptor, label string) *Base {
	return &Base{
		descriptor: descriptor,
		label:      label,
		byCode:     make(map[uint32]*method),
		nextCode:   1,
	}
}

// Descriptor implements binder.Service.
func (b *Base) Descriptor() string { return b.descriptor }

// Label returns the human-readable HAL name used in crash titles.
func (b *Base) Label() string { return b.label }

// Register adds a method. A zero Code is auto-assigned sequentially, as
// AIDL-generated stubs number their transactions.
func (b *Base) Register(sig binder.MethodSig, h Handler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if sig.Code == 0 {
		sig.Code = b.nextCode
	}
	if _, dup := b.byCode[sig.Code]; dup {
		panic(fmt.Sprintf("hal: %s duplicate transaction code %d", b.descriptor, sig.Code))
	}
	b.nextCode = sig.Code + 1
	m := &method{sig: sig, h: h}
	b.methods = append(b.methods, m)
	b.byCode[sig.Code] = m
}

// RegisterDiagnostics adds the boilerplate getter surface every AIDL
// service ships — version, capability, statistics and dump entry points
// that parse trivially and reach no driver code. Like the legacy ioctls on
// the kernel side, they model the dead weight of real interface lists:
// occurrence weighting assigns them the floor weight because no framework
// workload ever calls them.
func (b *Base) RegisterDiagnostics() {
	stub := func(v uint64) Handler {
		return func(in []Val, reply *binder.Parcel) binder.Status {
			reply.WriteUint64(v)
			return binder.StatusOK
		}
	}
	b.Register(sig("getInterfaceVersion", ""), stub(2))
	b.Register(sig("getCapabilities", ""), stub(0x1f))
	b.Register(sig("getStatistics", "",
		argInt("counter", 0, 15)), stub(0))
	b.Register(sig("debugDump", "",
		argInt("verbosity", 0, 3)), stub(1))
}

// Transact implements binder.Service: reflection on InterfaceTransaction,
// argument decoding per the registered signature, then handler dispatch.
func (b *Base) Transact(code uint32, in, out *binder.Parcel) binder.Status {
	if code == binder.InterfaceTransaction {
		b.mu.Lock()
		sigs := make([]binder.MethodSig, len(b.methods))
		for i, m := range b.methods {
			sigs[i] = m.sig
		}
		b.mu.Unlock()
		binder.MarshalMethods(out, sigs)
		return binder.StatusOK
	}
	b.mu.Lock()
	m := b.byCode[code]
	b.mu.Unlock()
	if m == nil {
		return binder.StatusUnknownTransaction
	}
	vals := make([]Val, len(m.sig.Args))
	for i, a := range m.sig.Args {
		switch a.Kind {
		case "buffer":
			data, err := in.ReadBytes()
			if err != nil {
				return binder.StatusBadValue
			}
			vals[i].B = data
		case "string":
			s, err := in.ReadString()
			if err != nil {
				return binder.StatusBadValue
			}
			vals[i].S = s
		default: // int, flags, resource
			u, err := in.ReadUint64()
			if err != nil {
				return binder.StatusBadValue
			}
			vals[i].U = u
		}
	}
	return m.h(vals, out)
}

// Crash describes a native crash in a HAL service process.
type Crash struct {
	Service string // Binder descriptor
	Label   string // human HAL name
	Signal  string // "SIGSEGV", "SIGABRT"
	Site    string // faulting function
}

// Title renders the Table II style title, e.g. "Native crash in Graphics HAL".
func (c Crash) Title() string {
	return fmt.Sprintf("Native crash in %s HAL", c.Label)
}

// String renders a tombstone-style summary.
func (c Crash) String() string {
	return fmt.Sprintf("Fatal signal %s in %s (%s), fault addr in %s",
		c.Signal, c.Service, c.Label, c.Site)
}

// segfault models a native memory fault inside service code: it panics with
// the crash record; the hosting Process recovers it.
func (b *Base) segfault(site string) {
	panic(Crash{Service: b.descriptor, Label: b.label, Signal: "SIGSEGV", Site: site})
}

// Process hosts one HAL service the way init spawns a HAL process: it
// assigns the PID, recovers native crashes, and refuses transactions while
// dead (DEAD_OBJECT), until the device reboots and reconstructs it.
type Process struct {
	PID int //droidvet:checkpoint ephemeral assigned by init at spawn; a restore keeps the same process
	snap.Dirty

	inner   binder.Service
	label   string //droidvet:checkpoint ephemeral service identity, fixed at construction
	rebuild func() binder.Service // reconstructs a pristine service on restore
	mu      sync.Mutex
	dead    bool
	crashes []Crash

	// deathFn is the installed death recipient (binderLinkToDeath): fired
	// once per alive→dead transition, then disarmed until the process is
	// respawned — a reboot constructs fresh armed processes, and Restore
	// re-arms explicitly (a restored-to-alive process must notify again if
	// it dies on the next exec).
	deathFn    func()
	deathArmed bool
}

// NewProcess wraps a service in a process with the given PID.
func NewProcess(pid int, svc binder.Service, label string) *Process {
	return &Process{PID: pid, inner: svc, label: label}
}

// SetRebuild installs the service reconstructor used by Restore to bring
// the hosted service back to its freshly-constructed state. The device
// installs it at boot; processes without one keep their service across
// restores.
func (p *Process) SetRebuild(f func() binder.Service) {
	p.mu.Lock()
	p.rebuild = f
	p.mu.Unlock()
}

// LinkToDeath installs fn as the process's death recipient, as a client
// registering binderLinkToDeath would. The recipient fires once on the
// next alive→dead transition (outside process locks) and is re-armed by
// respawn paths: reboot and Restore.
func (p *Process) LinkToDeath(fn func()) {
	p.mu.Lock()
	p.deathFn = fn
	p.deathArmed = fn != nil
	p.mu.Unlock()
}

// Descriptor implements binder.Service.
func (p *Process) Descriptor() string {
	p.mu.Lock()
	inner := p.inner
	p.mu.Unlock()
	return inner.Descriptor()
}

// Label returns the hosted HAL's human name.
func (p *Process) Label() string { return p.label }

// Dead reports whether the process crashed and has not been restarted.
func (p *Process) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// Transact implements binder.Service with native-crash recovery.
func (p *Process) Transact(code uint32, in, out *binder.Parcel) (st binder.Status) {
	p.Touch() // any transaction may mutate service-internal state
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return binder.StatusDeadObject
	}
	inner := p.inner
	p.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(Crash)
			if !ok {
				// Any other panic is an abort in service code.
				c = Crash{
					Service: inner.Descriptor(), Label: p.label,
					Signal: "SIGABRT", Site: fmt.Sprint(r),
				}
			}
			p.mu.Lock()
			p.dead = true
			p.crashes = append(p.crashes, c)
			var death func()
			if p.deathArmed {
				p.deathArmed = false
				death = p.deathFn
			}
			p.mu.Unlock()
			// One-shot death notification, delivered outside p.mu: the
			// recipient may inspect arbitrary device state.
			if death != nil {
				death()
			}
			st = binder.StatusDeadObject
		}
	}()
	return inner.Transact(code, in, out)
}

// TakeCrashes returns and clears recorded native crashes.
func (p *Process) TakeCrashes() []Crash {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.crashes
	p.crashes = nil
	return out
}
