package hal

import (
	"strings"
	"testing"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/vkernel"
)

// halRig boots a kernel with every driver and wraps one service in a
// process, the way the device package does.
type halRig struct {
	t    *testing.T
	k    *vkernel.Kernel
	proc *Process
}

func newHALRig(t *testing.T, b bugs.Set, build func(*Sys, bugs.Set) binder.Service, label string) *halRig {
	t.Helper()
	k := vkernel.New()
	k.RegisterDevice(drivers.PathTCPC, drivers.NewTCPC(b))
	k.RegisterDevice(drivers.PathHCI, drivers.NewHCI(b))
	k.RegisterDevice(drivers.PathVideo, drivers.NewV4L2(b))
	k.RegisterDevice(drivers.PathPCM, drivers.NewAudio(b))
	k.RegisterDevice(drivers.PathGPU, drivers.NewGPU(b))
	k.RegisterDevice(drivers.PathIIO, drivers.NewSensor(b))
	k.RegisterDevice(drivers.PathNFC, drivers.NewNFC(b))
	k.RegisterDevice(drivers.PathThermal, drivers.NewThermal(b))
	svc := build(&Sys{K: k, PID: 1000}, b)
	return &halRig{t: t, k: k, proc: NewProcess(1000, svc, label)}
}

// call invokes a method by name via reflection + transaction.
func (r *halRig) call(method string, marshal func(*binder.Parcel)) (*binder.Parcel, binder.Status) {
	r.t.Helper()
	reflOut := binder.NewParcel()
	if st := r.proc.Transact(binder.InterfaceTransaction, binder.NewParcel(), reflOut); st != binder.StatusOK {
		r.t.Fatalf("reflect: %v", st)
	}
	methods, err := binder.UnmarshalMethods(reflOut)
	if err != nil {
		r.t.Fatal(err)
	}
	for _, m := range methods {
		if m.Name == method {
			in, out := binder.NewParcel(), binder.NewParcel()
			if marshal != nil {
				marshal(in)
			}
			return out, r.proc.Transact(m.Code, in, out)
		}
	}
	r.t.Fatalf("no method %q", method)
	return nil, binder.StatusFailed
}

func (r *halRig) mustCall(method string, marshal func(*binder.Parcel)) *binder.Parcel {
	r.t.Helper()
	out, st := r.call(method, marshal)
	if st != binder.StatusOK {
		r.t.Fatalf("%s: %v", method, st)
	}
	return out
}

func u64(p *binder.Parcel) uint64 {
	v, _ := p.ReadUint64()
	return v
}

func asService(f func(*Sys, bugs.Set) binder.Service) func(*Sys, bugs.Set) binder.Service {
	return f
}

func TestGraphicsComposerFlow(t *testing.T) {
	r := newHALRig(t, nil, asService(func(s *Sys, b bugs.Set) binder.Service { return NewGraphics(s, b) }), "Graphics")
	out := r.mustCall("createLayer", func(p *binder.Parcel) {
		p.WriteUint64(1280)
		p.WriteUint64(720)
		p.WriteUint64(1)
	})
	layer := u64(out)
	if layer == 0 {
		t.Fatal("no layer id")
	}
	r.mustCall("setLayerBuffer", func(p *binder.Parcel) { p.WriteUint64(layer); p.WriteUint64(0) })
	r.mustCall("presentDisplay", nil)
	r.mustCall("destroyLayer", func(p *binder.Parcel) { p.WriteUint64(layer) })
	// With the bug disabled, present after destroy is clean (empty list).
	if _, st := r.call("presentDisplay", nil); st != binder.StatusBadValue {
		t.Fatalf("present with no layers = %v", st)
	}
	// The kernel saw real GPU work from the HAL's pid.
	if r.k.SyscallCount() == 0 {
		t.Fatal("no syscalls issued")
	}
}

func TestGraphicsBug2CrashAfterDestroy(t *testing.T) {
	r := newHALRig(t, bugs.NewSet(bugs.GraphicsHALCrash),
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewGraphics(s, b) }), "Graphics")
	a := u64(r.mustCall("createLayer", func(p *binder.Parcel) {
		p.WriteUint64(64)
		p.WriteUint64(64)
		p.WriteUint64(1)
	}))
	r.mustCall("destroyLayer", func(p *binder.Parcel) { p.WriteUint64(a) })
	// The dangling presentation-list entry crashes the process.
	if _, st := r.call("presentDisplay", nil); st != binder.StatusDeadObject {
		t.Fatalf("status = %v, want DEAD_OBJECT", st)
	}
	if !r.proc.Dead() {
		t.Fatal("process should be dead")
	}
	crashes := r.proc.TakeCrashes()
	if len(crashes) != 1 || crashes[0].Title() != "Native crash in Graphics HAL" {
		t.Fatalf("crashes = %v", crashes)
	}
	if !strings.Contains(crashes[0].String(), "SIGSEGV") {
		t.Fatalf("detail = %q", crashes[0].String())
	}
	// Dead process refuses everything, including reflection.
	if st := r.proc.Transact(binder.InterfaceTransaction, binder.NewParcel(), binder.NewParcel()); st != binder.StatusDeadObject {
		t.Fatal("dead process answered")
	}
}

func TestGraphicsLockdepRouteViaLayers(t *testing.T) {
	r := newHALRig(t, bugs.NewSet(bugs.LockdepSubclass),
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewGraphics(s, b) }), "Graphics")
	for i := 0; i < 8; i++ {
		r.mustCall("createLayer", func(p *binder.Parcel) {
			p.WriteUint64(64)
			p.WriteUint64(64)
			p.WriteUint64(1)
		})
	}
	// presentDisplay with 8 layers drives subclass 8 into lockdep.
	if _, st := r.call("presentDisplay", nil); st != binder.StatusFailed {
		t.Fatalf("status = %v", st)
	}
	if !r.k.Wedged() {
		t.Fatal("kernel should be wedged by the lockdep BUG")
	}
}

func TestMediaBug6FlushOverrun(t *testing.T) {
	r := newHALRig(t, bugs.NewSet(bugs.MediaHALCrash),
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewMedia(s, b) }), "Media")
	id := u64(r.mustCall("createCodec", func(p *binder.Parcel) {
		p.WriteString("audio/aac")
		p.WriteUint64(0)
		p.WriteUint64(1024)
	}))
	r.mustCall("flush", func(p *binder.Parcel) { p.WriteUint64(id) })
	if _, st := r.call("queueBuffer", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteBytes(make([]byte, 600))
	}); st != binder.StatusDeadObject {
		t.Fatalf("status = %v, want DEAD_OBJECT", st)
	}
	crashes := r.proc.TakeCrashes()
	if len(crashes) != 1 || crashes[0].Title() != "Native crash in Media HAL" {
		t.Fatalf("crashes = %v", crashes)
	}
}

func TestMediaFlushSafeWithoutBug(t *testing.T) {
	r := newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewMedia(s, b) }), "Media")
	id := u64(r.mustCall("createCodec", func(p *binder.Parcel) {
		p.WriteString("audio/aac")
		p.WriteUint64(0)
		p.WriteUint64(1024)
	}))
	r.mustCall("flush", func(p *binder.Parcel) { p.WriteUint64(id) })
	if _, st := r.call("queueBuffer", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteBytes(make([]byte, 600))
	}); st != binder.StatusBadValue {
		t.Fatalf("status = %v, want BAD_VALUE", st)
	}
	if r.proc.Dead() {
		t.Fatal("process died without bug enabled")
	}
}

func TestMediaLowLatencyDrainHang(t *testing.T) {
	r := newHALRig(t, bugs.NewSet(bugs.AudioHang),
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewMedia(s, b) }), "Media")
	r.k.StepBudget = 1000
	id := u64(r.mustCall("createCodec", func(p *binder.Parcel) {
		p.WriteString("audio/raw")
		p.WriteUint64(1)   // low latency
		p.WriteUint64(256) // hint % 128 == 0 -> zero period
	}))
	r.mustCall("queueBuffer", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteBytes(make([]byte, 128))
	})
	if _, st := r.call("drain", func(p *binder.Parcel) { p.WriteUint64(id) }); st != binder.StatusFailed {
		t.Fatalf("status = %v", st)
	}
	if !r.k.Wedged() {
		t.Fatal("kernel drain hang should wedge")
	}
}

func TestCameraBug9BothFlavors(t *testing.T) {
	open := func(r *halRig) uint64 {
		return u64(r.mustCall("openStream", func(p *binder.Parcel) {
			p.WriteUint64(1280)
			p.WriteUint64(720)
			p.WriteUint64(drivers.PixFmtNV12)
		}))
	}
	rotate := func(r *halRig, id, val uint64) (binder.Status, *binder.Parcel) {
		out, st := r.call("setParameter", func(p *binder.Parcel) {
			p.WriteUint64(id)
			p.WriteUint64(13)
			p.WriteUint64(val)
		})
		return st, out
	}

	// A live transposed-rotation change mid-capture crashes the capture
	// thread immediately (bug №9).
	for _, val := range []uint64{90, 270} {
		r := newHALRig(t, bugs.NewSet(bugs.CameraHALCrash),
			asService(func(s *Sys, b bugs.Set) binder.Service { return NewCamera(s, b) }), "Camera")
		id := open(r)
		r.mustCall("startCapture", func(p *binder.Parcel) { p.WriteUint64(id) })
		if st, _ := rotate(r, id, val); st != binder.StatusDeadObject {
			t.Fatalf("live rotation %d status = %v, want DEAD_OBJECT", val, st)
		}
		if c := r.proc.TakeCrashes(); len(c) != 1 || c[0].Title() != "Native crash in Camera HAL" {
			t.Fatalf("crashes = %v", c)
		}
	}

	// The framework's order — rotation before start — never crashes.
	r := newHALRig(t, bugs.NewSet(bugs.CameraHALCrash),
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewCamera(s, b) }), "Camera")
	id := open(r)
	rotate(r, id, 90)
	r.mustCall("startCapture", func(p *binder.Parcel) { p.WriteUint64(id) })
	r.mustCall("captureFrame", func(p *binder.Parcel) { p.WriteUint64(id) })
	r.mustCall("stopCapture", func(p *binder.Parcel) { p.WriteUint64(id) })
	if r.proc.Dead() {
		t.Fatal("framework order crashed")
	}

	// A live change to a non-transposed rotation is harmless.
	r = newHALRig(t, bugs.NewSet(bugs.CameraHALCrash),
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewCamera(s, b) }), "Camera")
	id = open(r)
	r.mustCall("startCapture", func(p *binder.Parcel) { p.WriteUint64(id) })
	if st, _ := rotate(r, id, 180); st != binder.StatusOK {
		t.Fatalf("rotation 180 status = %v", st)
	}
	r.mustCall("captureFrame", func(p *binder.Parcel) { p.WriteUint64(id) })
	if r.proc.Dead() {
		t.Fatal("non-transposed live rotation crashed")
	}
}

func TestBluetoothDiscoveryDrivesKernel(t *testing.T) {
	r := newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewBluetooth(s, b) }), "Bluetooth")
	r.mustCall("enable", nil)
	r.mustCall("startDiscovery", func(p *binder.Parcel) { p.WriteUint64(drivers.HCIScanInquiry) })
	out := r.mustCall("connect", func(p *binder.Parcel) { p.WriteUint64(0x42) })
	handle := u64(out)
	if handle == 0 {
		t.Fatal("no handle")
	}
	r.mustCall("acceptConnection", nil)
	r.mustCall("disconnect", func(p *binder.Parcel) { p.WriteUint64(handle) })
	r.mustCall("getSupportedCodecs", nil)
	r.mustCall("disable", nil)
}

func TestUSBReprobeArmsVendorRegister(t *testing.T) {
	r := newHALRig(t, bugs.NewSet(bugs.TCPCProbe),
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewUSB(s, b) }), "Usb")
	r.mustCall("enableContract", func(p *binder.Parcel) { p.WriteUint64(9000) })
	r.mustCall("startToggling", nil)
	// reprobeChip writes the init register first, so the kernel WARN fires.
	if _, st := r.call("reprobeChip", nil); st != binder.StatusFailed {
		t.Fatalf("status = %v", st)
	}
	found := false
	for _, c := range r.k.TakeCrashes() {
		if strings.Contains(c.Title, "rt1711_i2c_probe") {
			found = true
		}
	}
	if !found {
		t.Fatal("HAL route did not trigger bug №1")
	}
}

func TestSensorsAndThermalAndNFC(t *testing.T) {
	r := newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewSensors(s, b) }), "Sensors")
	r.mustCall("activate", func(p *binder.Parcel) { p.WriteUint64(0); p.WriteUint64(1) })
	r.mustCall("batch", func(p *binder.Parcel) { p.WriteUint64(0); p.WriteUint64(100) })
	out := r.mustCall("poll", nil)
	if data, err := out.ReadBytes(); err != nil || len(data) == 0 {
		t.Fatalf("poll data = %v/%v", data, err)
	}

	r = newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewThermal(s, b) }), "Thermal")
	out = r.mustCall("getTemperature", func(p *binder.Parcel) { p.WriteUint64(0) })
	if u64(out) == 0 {
		t.Fatal("zero temperature")
	}

	r = newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewNFC(s, b) }), "Nfc")
	r.mustCall("enable", nil)
	r.mustCall("transceive", func(p *binder.Parcel) { p.WriteBytes([]byte{0x00, 0xa4}) })
	r.mustCall("firmwareUpdate", func(p *binder.Parcel) { p.WriteBytes([]byte{1, 2, 3}) })
}

func TestAudioHALFlow(t *testing.T) {
	r := newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewAudio(s, b) }), "Audio")
	id := u64(r.mustCall("openOutput", func(p *binder.Parcel) {
		p.WriteUint64(48000)
		p.WriteUint64(2)
	}))
	r.mustCall("writeAudio", func(p *binder.Parcel) {
		p.WriteUint64(id)
		p.WriteBytes(make([]byte, 512))
	})
	r.mustCall("setVolume", func(p *binder.Parcel) { p.WriteUint64(50) })
	out := r.mustCall("getPosition", func(p *binder.Parcel) { p.WriteUint64(id) })
	_ = out
	r.mustCall("standby", func(p *binder.Parcel) { p.WriteUint64(id) })
}

func TestReflectionListsAllMethods(t *testing.T) {
	r := newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewGraphics(s, b) }), "Graphics")
	out := binder.NewParcel()
	if st := r.proc.Transact(binder.InterfaceTransaction, binder.NewParcel(), out); st != binder.StatusOK {
		t.Fatal(st)
	}
	methods, err := binder.UnmarshalMethods(out)
	if err != nil {
		t.Fatal(err)
	}
	// 6 real methods + 4 diagnostic stubs.
	if len(methods) != 10 {
		t.Fatalf("methods = %d, want 10", len(methods))
	}
	codes := make(map[uint32]bool)
	for _, m := range methods {
		if codes[m.Code] {
			t.Fatal("duplicate transaction code")
		}
		codes[m.Code] = true
	}
}

func TestUnknownTransaction(t *testing.T) {
	r := newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewGraphics(s, b) }), "Graphics")
	if st := r.proc.Transact(0xdead, binder.NewParcel(), binder.NewParcel()); st != binder.StatusUnknownTransaction {
		t.Fatalf("status = %v", st)
	}
}

func TestShortParcelIsBadValue(t *testing.T) {
	r := newHALRig(t, nil,
		asService(func(s *Sys, b bugs.Set) binder.Service { return NewGraphics(s, b) }), "Graphics")
	// createLayer is code 1 and wants three u64s; send none.
	if st := r.proc.Transact(1, binder.NewParcel(), binder.NewParcel()); st != binder.StatusBadValue {
		t.Fatalf("status = %v", st)
	}
}
