package hal

import (
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
)

// InputDescriptor is the input/touch HAL's Binder descriptor.
const InputDescriptor = "android.hardware.input.touch"

// Input is the touch HAL over the capacitive controller: it owns the
// calibration lifecycle, translates gesture configuration, injects
// synthetic event streams (the framework's pointer pipeline), and drives
// the vendor firmware-update path with the proper image header.
type Input struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu      sync.Mutex
	touchFD int
}

// NewInput constructs the touch HAL over the given syscall facade.
func NewInput(sys *Sys, b bugs.Set) *Input {
	t := &Input{Base: NewBase(InputDescriptor, "Input"), sys: sys, bugs: b, touchFD: -1}
	t.Register(sig("calibrate", "",
		argInt("refx", 0, 1079), argInt("refy", 0, 1919)), t.calibrate)
	t.Register(sig("setMode", "",
		argFlags("mode", drivers.TouchModeFinger, drivers.TouchModeStylus,
			drivers.TouchModeGesture)), t.setMode)
	t.Register(sig("injectSwipe", "",
		argInt("x0", 0, 1000), argInt("y0", 0, 1800),
		argInt("steps", 1, 6)), t.injectSwipe)
	t.Register(sig("firmwareUpdate", "",
		argInt("version", 1, 0xffff), argBuf("payload", 48)), t.firmwareUpdate)
	t.Register(sig("selfTest", ""), t.selfTest)
	t.RegisterDiagnostics()
	return t
}

func (t *Input) fd() (int, binder.Status) {
	if t.touchFD >= 0 {
		return t.touchFD, binder.StatusOK
	}
	fd, err := t.sys.Open(drivers.PathTouch, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	t.touchFD = fd
	return fd, binder.StatusOK
}

func (t *Input) calibrate(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	arg := drivers.PutU64(nil, in[0].U)
	arg = drivers.PutU64(arg, in[1].U)
	if _, _, err := t.sys.Ioctl(fd, drivers.TouchCalibrate, arg); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

func (t *Input) setMode(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	// The HAL calibrates lazily before the first mode change, the way the
	// real pipeline brings a panel up.
	arg := drivers.PutU64(nil, 540)
	arg = drivers.PutU64(arg, 960)
	_, _, _ = t.sys.Ioctl(fd, drivers.TouchCalibrate, arg)
	if _, _, err := t.sys.Ioctl(fd, drivers.TouchSetMode, drivers.PutU64(nil, in[0].U)); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

func (t *Input) injectSwipe(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	x, y, steps := in[0].U, in[1].U, in[2].U
	if steps == 0 || steps > 6 {
		return binder.StatusBadValue
	}
	var stream []byte
	for i := uint64(0); i < steps; i++ {
		px := x + i*8
		py := y + i*8
		stream = append(stream,
			byte(px), byte(px>>8),
			byte(py), byte(py>>8),
			0x40, 0x00, // pressure
		)
	}
	if _, err := t.sys.Write(fd, stream); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (t *Input) firmwareUpdate(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	// Updates require the panel off; the HAL sequences that itself.
	_, _, _ = t.sys.Ioctl(fd, drivers.TouchSetMode, drivers.PutU64(nil, drivers.TouchModeOff))
	ver := in[0].U
	img := append([]byte{'T', 'P', byte(ver), byte(ver >> 8)}, in[1].B...)
	v, _, err := t.sys.Ioctl(fd, drivers.TouchFwUpdate, img)
	if err != nil {
		return binder.StatusBadValue
	}
	reply.WriteUint64(v)
	return binder.StatusOK
}

func (t *Input) selfTest(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	v, _, err := t.sys.Ioctl(fd, drivers.TouchSelfTest, nil)
	if err != nil {
		return binder.StatusFailed
	}
	reply.WriteUint64(v)
	return binder.StatusOK
}
