package hal

import (
	"testing"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/vkernel"
)

func newInputRig(t *testing.T) *halRig {
	t.Helper()
	k := vkernel.New()
	k.RegisterDevice(drivers.PathTouch, drivers.NewTouch(nil))
	svc := NewInput(&Sys{K: k, PID: 1000}, bugs.Set(nil))
	return &halRig{t: t, k: k, proc: NewProcess(1000, svc, "Input")}
}

func TestInputHALFlow(t *testing.T) {
	r := newInputRig(t)
	r.mustCall("calibrate", func(p *binder.Parcel) {
		p.WriteUint64(540)
		p.WriteUint64(960)
	})
	r.mustCall("setMode", func(p *binder.Parcel) {
		p.WriteUint64(drivers.TouchModeFinger)
	})
	r.mustCall("injectSwipe", func(p *binder.Parcel) {
		p.WriteUint64(100)
		p.WriteUint64(200)
		p.WriteUint64(4)
	})
	out := r.mustCall("selfTest", nil)
	if u64(out) != 1 {
		t.Fatal("self test failed")
	}
	// The HAL sequenced real kernel traffic.
	if r.k.SyscallCount() == 0 {
		t.Fatal("no syscalls")
	}
}

func TestInputHALFirmwareUpdateSequencesModeOff(t *testing.T) {
	r := newInputRig(t)
	r.mustCall("setMode", func(p *binder.Parcel) {
		p.WriteUint64(drivers.TouchModeFinger)
	})
	// The HAL turns reporting off itself before flashing.
	out := r.mustCall("firmwareUpdate", func(p *binder.Parcel) {
		p.WriteUint64(0x0205)
		p.WriteBytes([]byte{1, 2, 3})
	})
	if u64(out) != 0x0205 {
		t.Fatalf("fw version = %#x", u64(out))
	}
}

func TestInputHALRejectsBadSwipe(t *testing.T) {
	r := newInputRig(t)
	r.mustCall("setMode", func(p *binder.Parcel) {
		p.WriteUint64(drivers.TouchModeFinger)
	})
	if _, st := r.call("injectSwipe", func(p *binder.Parcel) {
		p.WriteUint64(100)
		p.WriteUint64(200)
		p.WriteUint64(0) // zero steps
	}); st != binder.StatusBadValue {
		t.Fatalf("status = %v", st)
	}
}
