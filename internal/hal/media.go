package hal

import (
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
)

// MediaDescriptor is the media codec service's Binder descriptor.
const MediaDescriptor = "android.hardware.media.codec"

type codec struct {
	id       uint64
	lowLat   bool
	started  bool
	flushed  bool
	capacity int
}

// Media is the media codec HAL. Its fast low-latency mixer path configures
// the PCM driver with the vendor magic flag, which is the realistic route
// into the kernel drain-loop hang (bug №5). Its own defect is bug №6: after
// a flush, queueing a buffer larger than the (reset) internal capacity runs
// an unchecked memcpy and the process segfaults.
type Media struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu        sync.Mutex
	pcmFD     int
	codecs    map[uint64]*codec
	nextCodec uint64
}

// NewMedia constructs the media codec service over the given syscall facade.
func NewMedia(sys *Sys, b bugs.Set) *Media {
	m := &Media{
		Base:      NewBase(MediaDescriptor, "Media"),
		sys:       sys,
		bugs:      b,
		pcmFD:     -1,
		codecs:    make(map[uint64]*codec),
		nextCodec: 1,
	}
	m.Register(sig("createCodec", "hal_codec",
		argStr("mime", "audio/aac", "audio/opus", "audio/raw"),
		argFlags("lowLatency", 0, 1),
		argInt("periodHint", 0, 4096)), m.createCodec)
	m.Register(sig("queueBuffer", "",
		argRes("codec", "hal_codec"), argBuf("data", 1024)), m.queueBuffer)
	m.Register(sig("flush", "",
		argRes("codec", "hal_codec")), m.flush)
	m.Register(sig("drain", "",
		argRes("codec", "hal_codec")), m.drain)
	m.Register(sig("releaseCodec", "",
		argRes("codec", "hal_codec")), m.releaseCodec)
	m.Register(sig("getMetrics", ""), m.getMetrics)
	m.RegisterDiagnostics()
	return m
}

func (m *Media) fd() (int, binder.Status) {
	if m.pcmFD >= 0 {
		return m.pcmFD, binder.StatusOK
	}
	fd, err := m.sys.Open(drivers.PathPCM, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	m.pcmFD = fd
	return fd, binder.StatusOK
}

func (m *Media) createCodec(in []Val, reply *binder.Parcel) binder.Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	fd, st := m.fd()
	if st != binder.StatusOK {
		return st
	}
	lowLat := in[1].U == 1
	periodHint := in[2].U
	rate := uint64(48000)
	switch in[0].S {
	case "audio/aac":
		rate = 44100
	case "audio/raw":
		rate = 96000
	}

	var period, flags uint64
	if lowLat {
		// The fast mixer uses the vendor low-latency path: the period
		// derives from the hint and the magic flag skips validation —
		// a zero-rounded hint produces the hang-prone zero period.
		period = periodHint % 128
		flags = drivers.AudioLowLatencyMagic
	} else {
		period = 1024
		flags = 0
	}
	arg := drivers.PutU64(nil, rate)
	arg = drivers.PutU64(arg, 2) // channels
	arg = drivers.PutU64(arg, period)
	arg = drivers.PutU64(arg, flags)
	if _, _, err := m.sys.Ioctl(fd, drivers.PCMHwParams, arg); err != nil {
		return binder.StatusFailed
	}
	if _, _, err := m.sys.Ioctl(fd, drivers.PCMPrepare, nil); err != nil {
		return binder.StatusFailed
	}
	id := m.nextCodec
	m.nextCodec++
	m.codecs[id] = &codec{id: id, lowLat: lowLat, capacity: 1024}
	reply.WriteUint64(id)
	return binder.StatusOK
}

func (m *Media) queueBuffer(in []Val, reply *binder.Parcel) binder.Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.codecs[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	data := in[1].B
	if len(data) == 0 {
		return binder.StatusBadValue
	}
	if c.flushed {
		// Flush resets the ring to its small post-flush capacity but the
		// buggy blob keeps validating against the original one: large
		// queues overrun the ring (bug №6).
		if len(data) > 512 {
			if m.bugs.Has(bugs.MediaHALCrash) {
				m.segfault("MediaCodec::queueInputBuffer")
			}
			return binder.StatusBadValue
		}
		c.flushed = false
	}
	fd, st := m.fd()
	if st != binder.StatusOK {
		return st
	}
	if !c.started {
		if _, _, err := m.sys.Ioctl(fd, drivers.PCMStart, nil); err != nil {
			return binder.StatusFailed
		}
		c.started = true
	}
	if _, err := m.sys.Write(fd, data); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (m *Media) flush(in []Val, reply *binder.Parcel) binder.Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.codecs[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	fd, st := m.fd()
	if st != binder.StatusOK {
		return st
	}
	if c.started {
		_, _, _ = m.sys.Ioctl(fd, drivers.PCMStop, nil)
		c.started = false
	}
	_, _, _ = m.sys.Ioctl(fd, drivers.PCMPrepare, nil)
	c.flushed = true
	return binder.StatusOK
}

func (m *Media) drain(in []Val, reply *binder.Parcel) binder.Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.codecs[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	fd, st := m.fd()
	if st != binder.StatusOK {
		return st
	}
	if !c.started {
		return binder.StatusBadValue
	}
	// The kernel drain loop with a zero period is bug №5: the watchdog
	// wedges the kernel and the ioctl returns EIO.
	if _, _, err := m.sys.Ioctl(fd, drivers.PCMDrain, nil); err != nil {
		return binder.StatusFailed
	}
	c.started = false
	return binder.StatusOK
}

func (m *Media) releaseCodec(in []Val, reply *binder.Parcel) binder.Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.codecs[in[0].U]
	if !ok {
		return binder.StatusBadValue
	}
	if c.started {
		if fd, st := m.fd(); st == binder.StatusOK {
			_, _, _ = m.sys.Ioctl(fd, drivers.PCMStop, nil)
		}
	}
	delete(m.codecs, c.id)
	return binder.StatusOK
}

func (m *Media) getMetrics(in []Val, reply *binder.Parcel) binder.Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	fd, st := m.fd()
	if st != binder.StatusOK {
		return st
	}
	_, out, err := m.sys.Ioctl(fd, drivers.PCMGetPos, nil)
	if err != nil {
		return binder.StatusFailed
	}
	reply.WriteUint64(drivers.ArgU64(out, 0))
	reply.WriteUint64(drivers.ArgU64(out, 1))
	return binder.StatusOK
}
