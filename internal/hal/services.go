package hal

import (
	"sync"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/bugs"
	"droidfuzz/internal/drivers"
)

// Binder descriptors of the remaining vendor services.
const (
	BluetoothDescriptor = "android.hardware.bluetooth"
	NFCDescriptor       = "android.hardware.nfc"
	SensorsDescriptor   = "android.hardware.sensors"
	USBDescriptor       = "android.hardware.usb"
	ThermalDescriptor   = "android.hardware.thermal"
)

// Bluetooth is the BT HAL over the HCI driver. Its realistic sequences are
// the HAL-mediated routes to the two injected Bluetooth kernel bugs: №7
// (stale codec table after disable-with-inquiry-scan) and №11 (accept-queue
// use-after-free).
type Bluetooth struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu    sync.Mutex
	hciFD int
}

// NewBluetooth constructs the BT HAL over the given syscall facade.
func NewBluetooth(sys *Sys, b bugs.Set) *Bluetooth {
	t := &Bluetooth{Base: NewBase(BluetoothDescriptor, "Bluetooth"), sys: sys, bugs: b, hciFD: -1}
	t.Register(sig("enable", ""), t.enable)
	t.Register(sig("disable", ""), t.disable)
	t.Register(sig("startDiscovery", "",
		argFlags("mode", drivers.HCIScanPage, drivers.HCIScanInquiry,
			drivers.HCIScanPage|drivers.HCIScanInquiry)), t.startDiscovery)
	t.Register(sig("getSupportedCodecs", ""), t.getSupportedCodecs)
	t.Register(sig("connect", "hal_btconn",
		argInt("peer", 1, 0xffff)), t.connect)
	t.Register(sig("acceptConnection", ""), t.acceptConnection)
	t.Register(sig("disconnect", "",
		argRes("conn", "hal_btconn")), t.disconnect)
	t.Register(sig("sendHciCommand", "",
		argInt("opcode", 0, 0xffff), argBuf("params", 32)), t.sendHciCommand)
	t.RegisterDiagnostics()
	return t
}

func (t *Bluetooth) fd() (int, binder.Status) {
	if t.hciFD >= 0 {
		return t.hciFD, binder.StatusOK
	}
	fd, err := t.sys.Open(drivers.PathHCI, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	t.hciFD = fd
	return fd, binder.StatusOK
}

func (t *Bluetooth) ioctl(req uint64, arg []byte, reply *binder.Parcel, retVal bool) binder.Status {
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	v, _, err := t.sys.Ioctl(fd, req, arg)
	if err != nil {
		return binder.StatusFailed
	}
	if retVal {
		reply.WriteUint64(v)
	}
	return binder.StatusOK
}

func (t *Bluetooth) enable(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ioctl(drivers.HCIUp, nil, reply, false)
}

func (t *Bluetooth) disable(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ioctl(drivers.HCIDown, nil, reply, false)
}

func (t *Bluetooth) startDiscovery(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.ioctl(drivers.HCISetScan, drivers.PutU64(nil, in[0].U), reply, false); st != binder.StatusOK {
		return st
	}
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	// Issue the actual HCI_OP_INQUIRY command packet (LAP GIAC, 10.24 s,
	// unlimited responses) — the part of discovery only the stack knows.
	op := drivers.HCIOpInquiry
	pkt := []byte{byte(op), byte(op >> 8), 0x33, 0x8b, 0x9e, 0x08, 0x00}
	if _, err := t.sys.Write(fd, pkt); err != nil {
		return binder.StatusFailed
	}
	return t.ioctl(drivers.HCIInquiry, nil, reply, false)
}

func (t *Bluetooth) getSupportedCodecs(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	_, data, err := t.sys.Ioctl(fd, drivers.HCIReadCodecs, nil)
	if err != nil {
		return binder.StatusFailed
	}
	reply.WriteBytes(data)
	return binder.StatusOK
}

func (t *Bluetooth) connect(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	// The stack always negotiates secure simple pairing on outgoing
	// connections — the vendor flag whose teardown path carries bug №11.
	arg := drivers.PutU64(nil, in[0].U)
	arg = drivers.PutU64(arg, drivers.HCIConnSSP)
	return t.ioctl(drivers.HCICreateConn, arg, reply, true)
}

func (t *Bluetooth) acceptConnection(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ioctl(drivers.HCIAcceptConn, nil, reply, true)
}

func (t *Bluetooth) disconnect(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ioctl(drivers.HCIDisconn, drivers.PutU64(nil, in[0].U), reply, false)
}

func (t *Bluetooth) sendHciCommand(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	pkt := []byte{byte(in[0].U), byte(in[0].U >> 8)}
	pkt = append(pkt, in[1].B...)
	if _, err := t.sys.Write(fd, pkt); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

// NFC is the NFC HAL over the NFC controller driver.
type NFC struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu    sync.Mutex
	nfcFD int
}

// NewNFC constructs the NFC HAL over the given syscall facade.
func NewNFC(sys *Sys, b bugs.Set) *NFC {
	n := &NFC{Base: NewBase(NFCDescriptor, "Nfc"), sys: sys, bugs: b, nfcFD: -1}
	n.Register(sig("enable", ""), n.enable)
	n.Register(sig("disable", ""), n.disable)
	n.Register(sig("transceive", "",
		argBuf("frame", 255)), n.transceive)
	n.Register(sig("firmwareUpdate", "",
		argBuf("image", 120)), n.firmwareUpdate)
	n.RegisterDiagnostics()
	return n
}

func (n *NFC) fd() (int, binder.Status) {
	if n.nfcFD >= 0 {
		return n.nfcFD, binder.StatusOK
	}
	fd, err := n.sys.Open(drivers.PathNFC, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	n.nfcFD = fd
	return fd, binder.StatusOK
}

func (n *NFC) enable(in []Val, reply *binder.Parcel) binder.Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	fd, st := n.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := n.sys.Ioctl(fd, drivers.NFCPower, drivers.PutU64(nil, 1)); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (n *NFC) disable(in []Val, reply *binder.Parcel) binder.Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	fd, st := n.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := n.sys.Ioctl(fd, drivers.NFCPower, drivers.PutU64(nil, 0)); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (n *NFC) transceive(in []Val, reply *binder.Parcel) binder.Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	fd, st := n.fd()
	if st != binder.StatusOK {
		return st
	}
	frame := in[0].B
	if len(frame) == 0 {
		return binder.StatusBadValue
	}
	v, _, err := n.sys.Ioctl(fd, drivers.NFCRawXfer, frame)
	if err != nil {
		return binder.StatusFailed
	}
	reply.WriteUint64(v)
	return binder.StatusOK
}

func (n *NFC) firmwareUpdate(in []Val, reply *binder.Parcel) binder.Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	fd, st := n.fd()
	if st != binder.StatusOK {
		return st
	}
	_, _, _ = n.sys.Ioctl(fd, drivers.NFCPower, drivers.PutU64(nil, 0))
	// The HAL prepends the vendor firmware header the driver validates.
	img := append([]byte{0x4e, 0x46, 0x43, 0x01}, in[0].B...)
	if _, _, err := n.sys.Ioctl(fd, drivers.NFCFwDnld, img); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

// Sensors is the sensors HAL over the IIO hub.
type Sensors struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu    sync.Mutex
	iioFD int
}

// NewSensors constructs the sensors HAL over the given syscall facade.
func NewSensors(sys *Sys, b bugs.Set) *Sensors {
	s := &Sensors{Base: NewBase(SensorsDescriptor, "Sensors"), sys: sys, bugs: b, iioFD: -1}
	s.Register(sig("activate", "",
		argInt("sensor", 0, 7), argFlags("enabled", 0, 1)), s.activate)
	s.Register(sig("batch", "",
		argInt("sensor", 0, 7), argInt("rateHz", 1, 1000)), s.batch)
	s.Register(sig("poll", ""), s.poll)
	s.RegisterDiagnostics()
	return s
}

func (s *Sensors) fd() (int, binder.Status) {
	if s.iioFD >= 0 {
		return s.iioFD, binder.StatusOK
	}
	fd, err := s.sys.Open(drivers.PathIIO, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	s.iioFD = fd
	return fd, binder.StatusOK
}

func (s *Sensors) activate(in []Val, reply *binder.Parcel) binder.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	fd, st := s.fd()
	if st != binder.StatusOK {
		return st
	}
	req := drivers.IIOEnable
	if in[1].U == 0 {
		req = drivers.IIODisable
	}
	if _, _, err := s.sys.Ioctl(fd, req, drivers.PutU64(nil, in[0].U)); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

func (s *Sensors) batch(in []Val, reply *binder.Parcel) binder.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	fd, st := s.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := s.sys.Ioctl(fd, drivers.IIOSetFreq, drivers.PutU64(nil, in[1].U)); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

func (s *Sensors) poll(in []Val, reply *binder.Parcel) binder.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	fd, st := s.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := s.sys.Ioctl(fd, drivers.IIOTrigger, nil); err != nil {
		return binder.StatusFailed
	}
	data, err := s.sys.Read(fd, 64)
	if err != nil {
		return binder.StatusFailed
	}
	reply.WriteBytes(data)
	return binder.StatusOK
}

// USB is the USB/power-delivery HAL over the Type-C port controller. Its
// realistic role sequences are the HAL-mediated route to the TCPC bugs
// №1 (re-probe during DRP toggle) and №4 (VBUS with masked OC alert).
type USB struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu     sync.Mutex
	tcpcFD int
	role   uint64
}

// NewUSB constructs the USB HAL over the given syscall facade.
func NewUSB(sys *Sys, b bugs.Set) *USB {
	u := &USB{Base: NewBase(USBDescriptor, "Usb"), sys: sys, bugs: b, tcpcFD: -1}
	u.Register(sig("setPortRole", "",
		argFlags("role", drivers.TCPCModeOff, drivers.TCPCModeUFP,
			drivers.TCPCModeDFP, drivers.TCPCModeDRP)), u.setPortRole)
	u.Register(sig("enableContract", "",
		argFlags("millivolts", 5000, 9000, 12000, 15000, 20000)), u.enableContract)
	u.Register(sig("startToggling", ""), u.startToggling)
	u.Register(sig("reprobeChip", ""), u.reprobeChip)
	u.Register(sig("queryPortStatus", ""), u.queryPortStatus)
	u.Register(sig("setAlertMask", "",
		argInt("mask", 0, 0xffff)), u.setAlertMask)
	u.RegisterDiagnostics()
	return u
}

func (u *USB) fd() (int, binder.Status) {
	if u.tcpcFD >= 0 {
		return u.tcpcFD, binder.StatusOK
	}
	fd, err := u.sys.Open(drivers.PathTCPC, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	u.tcpcFD = fd
	return fd, binder.StatusOK
}

func (u *USB) setPortRole(in []Val, reply *binder.Parcel) binder.Status {
	u.mu.Lock()
	defer u.mu.Unlock()
	fd, st := u.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCSetMode, drivers.PutU64(nil, in[0].U)); err != nil {
		return binder.StatusBadValue
	}
	u.role = in[0].U
	return binder.StatusOK
}

func (u *USB) enableContract(in []Val, reply *binder.Parcel) binder.Status {
	u.mu.Lock()
	defer u.mu.Unlock()
	fd, st := u.fd()
	if st != binder.StatusOK {
		return st
	}
	if u.role == drivers.TCPCModeOff {
		// Negotiating a contract implies an active role.
		if _, _, err := u.sys.Ioctl(fd, drivers.TCPCSetMode, drivers.PutU64(nil, drivers.TCPCModeDRP)); err != nil {
			return binder.StatusFailed
		}
		u.role = drivers.TCPCModeDRP
	}
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCSetVoltage, drivers.PutU64(nil, in[0].U)); err != nil {
		return binder.StatusBadValue
	}
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCAttach, nil); err != nil {
		return binder.StatusFailed
	}
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCVbusOn, nil); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (u *USB) startToggling(in []Val, reply *binder.Parcel) binder.Status {
	u.mu.Lock()
	defer u.mu.Unlock()
	fd, st := u.fd()
	if st != binder.StatusOK {
		return st
	}
	if u.role != drivers.TCPCModeDRP {
		if _, _, err := u.sys.Ioctl(fd, drivers.TCPCSetMode, drivers.PutU64(nil, drivers.TCPCModeDRP)); err != nil {
			return binder.StatusFailed
		}
		u.role = drivers.TCPCModeDRP
	}
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCEnableToggle, nil); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (u *USB) reprobeChip(in []Val, reply *binder.Parcel) binder.Status {
	u.mu.Lock()
	defer u.mu.Unlock()
	fd, st := u.fd()
	if st != binder.StatusOK {
		return st
	}
	// Vendor init handshake: arm the rt1711h soft-reset register before
	// re-probing — proprietary knowledge only the HAL blob carries.
	arg := drivers.PutU64(nil, drivers.RT1711Addr)
	arg = drivers.PutU64(arg, drivers.RT1711InitReg)
	arg = drivers.PutU64(arg, uint64(drivers.RT1711InitVal))
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCI2CXfer, arg); err != nil {
		return binder.StatusFailed
	}
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCProbeChip, drivers.PutU64(nil, drivers.RT1711Addr)); err != nil {
		return binder.StatusFailed
	}
	return binder.StatusOK
}

func (u *USB) queryPortStatus(in []Val, reply *binder.Parcel) binder.Status {
	u.mu.Lock()
	defer u.mu.Unlock()
	fd, st := u.fd()
	if st != binder.StatusOK {
		return st
	}
	_, out, err := u.sys.Ioctl(fd, drivers.TCPCGetStatus, nil)
	if err != nil {
		return binder.StatusFailed
	}
	reply.WriteUint64(drivers.ArgU64(out, 0))
	reply.WriteUint64(drivers.ArgU64(out, 1))
	reply.WriteUint64(drivers.ArgU64(out, 2))
	return binder.StatusOK
}

func (u *USB) setAlertMask(in []Val, reply *binder.Parcel) binder.Status {
	u.mu.Lock()
	defer u.mu.Unlock()
	fd, st := u.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := u.sys.Ioctl(fd, drivers.TCPCSetAlert, drivers.PutU64(nil, in[0].U)); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

// Thermal is the thermal HAL over the thermal-zone driver.
type Thermal struct {
	*Base
	sys  *Sys
	bugs bugs.Set

	mu      sync.Mutex
	thermFD int
}

// NewThermal constructs the thermal HAL over the given syscall facade.
func NewThermal(sys *Sys, b bugs.Set) *Thermal {
	t := &Thermal{Base: NewBase(ThermalDescriptor, "Thermal"), sys: sys, bugs: b, thermFD: -1}
	t.Register(sig("getTemperature", "",
		argInt("zone", 0, 3)), t.getTemperature)
	t.Register(sig("setThrottling", "",
		argInt("zone", 0, 3), argInt("tripMilliC", 0, 120000)), t.setThrottling)
	t.Register(sig("setPolicy", "",
		argFlags("policy", 0, 1, 2)), t.setPolicy)
	t.RegisterDiagnostics()
	return t
}

func (t *Thermal) fd() (int, binder.Status) {
	if t.thermFD >= 0 {
		return t.thermFD, binder.StatusOK
	}
	fd, err := t.sys.Open(drivers.PathThermal, 0)
	if err != nil {
		return -1, binder.StatusFailed
	}
	t.thermFD = fd
	return fd, binder.StatusOK
}

func (t *Thermal) getTemperature(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	v, _, err := t.sys.Ioctl(fd, drivers.ThermalGetTemp, drivers.PutU64(nil, in[0].U))
	if err != nil {
		return binder.StatusBadValue
	}
	reply.WriteUint64(v)
	return binder.StatusOK
}

func (t *Thermal) setThrottling(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	arg := drivers.PutU64(nil, in[0].U)
	arg = drivers.PutU64(arg, in[1].U)
	if _, _, err := t.sys.Ioctl(fd, drivers.ThermalSetTrip, arg); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}

func (t *Thermal) setPolicy(in []Val, reply *binder.Parcel) binder.Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, st := t.fd()
	if st != binder.StatusOK {
		return st
	}
	if _, _, err := t.sys.Ioctl(fd, drivers.ThermalSetPolicy, drivers.PutU64(nil, in[0].U)); err != nil {
		return binder.StatusBadValue
	}
	return binder.StatusOK
}
