package hal

import "droidfuzz/internal/binder"

// Signature construction helpers for service method tables.

func argInt(name string, min, max uint64) binder.ArgSig {
	return binder.ArgSig{Name: name, Kind: "int", Min: min, Max: max}
}

func argFlags(name string, choices ...uint64) binder.ArgSig {
	return binder.ArgSig{Name: name, Kind: "flags", Choices: choices}
}

func argBuf(name string, maxLen uint32) binder.ArgSig {
	return binder.ArgSig{Name: name, Kind: "buffer", BufLen: maxLen}
}

func argStr(name string, choices ...string) binder.ArgSig {
	return binder.ArgSig{Name: name, Kind: "string", StrChoices: choices}
}

func argRes(name, kind string) binder.ArgSig {
	return binder.ArgSig{Name: name, Kind: "resource", Res: kind}
}

func sig(name, ret string, args ...binder.ArgSig) binder.MethodSig {
	return binder.MethodSig{Name: name, Ret: ret, Args: args}
}
