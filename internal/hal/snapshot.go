package hal

import "droidfuzz/internal/binder"

// Process checkpoint/restore. A HAL service's internals are opaque
// ("closed-source"), so restore does not copy fields back — it rebuilds the
// service from scratch via the reconstructor the device installed at boot,
// exactly what init does when it respawns a crashed HAL process. Boot
// issues no transactions, so a freshly constructed service IS the pristine
// post-boot state.

type procState struct {
	dead bool
}

// Checkpoint implements snap.Subsystem.
func (p *Process) Checkpoint() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &procState{dead: p.dead}
}

// Restore implements snap.Subsystem. Undrained crash records are dropped
// along with the dead service instance. The death recipient is re-armed:
// a restore respawns the process the same way init does after a crash, so
// a HAL that died mid-batch and was wound back to alive must deliver a
// fresh notification if it dies again on the next exec — previously only
// the reboot fallback (which constructs new armed processes) did this.
func (p *Process) Restore(s any) {
	st := s.(*procState)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rebuild != nil {
		p.inner = p.rebuild()
	}
	p.dead = st.dead
	p.crashes = nil
	p.deathArmed = p.deathFn != nil && !st.dead
}

// ProcExport is the Process's portable checkpoint blob. The service
// internals are opaque, so the only transferable state is liveness; the
// importing twin rebuilds its own same-model service instance.
type ProcExport struct {
	Dead bool
}

// Export implements snap.Subsystem.
func (p *Process) Export() any {
	st := p.Checkpoint().(*procState)
	return &ProcExport{Dead: st.dead}
}

// Import implements snap.Subsystem. The receiver keeps its own rebuild
// closure and death recipient; Restore re-arms the latter.
func (p *Process) Import(b any) {
	e := b.(*ProcExport)
	p.Restore(&procState{dead: e.Dead})
	p.Touch()
}

// Framework is a stateless dispatcher over the ServiceManager; it has
// nothing to capture, so its generation never advances and Device.Restore
// always skips it.

// Checkpoint implements snap.Subsystem.
func (f *Framework) Checkpoint() any { return nil }

// Restore implements snap.Subsystem.
func (f *Framework) Restore(any) {}

// Export implements snap.Subsystem.
func (f *Framework) Export() any { return nil }

// Import implements snap.Subsystem.
func (f *Framework) Import(any) {}

// Gen implements snap.Subsystem.
func (f *Framework) Gen() uint64 { return 0 }

var _ binder.Service = (*Process)(nil)
