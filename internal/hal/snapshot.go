package hal

import "droidfuzz/internal/binder"

// Process checkpoint/restore. A HAL service's internals are opaque
// ("closed-source"), so restore does not copy fields back — it rebuilds the
// service from scratch via the reconstructor the device installed at boot,
// exactly what init does when it respawns a crashed HAL process. Boot
// issues no transactions, so a freshly constructed service IS the pristine
// post-boot state.

type procState struct {
	dead bool
}

// Checkpoint implements snap.Subsystem.
func (p *Process) Checkpoint() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &procState{dead: p.dead}
}

// Restore implements snap.Subsystem. Undrained crash records are dropped
// along with the dead service instance.
func (p *Process) Restore(s any) {
	st := s.(*procState)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rebuild != nil {
		p.inner = p.rebuild()
	}
	p.dead = st.dead
	p.crashes = nil
}

// Framework is a stateless dispatcher over the ServiceManager; it has
// nothing to capture, so its generation never advances and Device.Restore
// always skips it.

// Checkpoint implements snap.Subsystem.
func (f *Framework) Checkpoint() any { return nil }

// Restore implements snap.Subsystem.
func (f *Framework) Restore(any) {}

// Gen implements snap.Subsystem.
func (f *Framework) Gen() uint64 { return 0 }

var _ binder.Service = (*Process)(nil)
