package kasan

import "sort"

// Portable checkpoint export/import. The blob mirrors heapState with
// exported fields only; live objects become a slice sorted by ID so the
// encoding is deterministic regardless of map iteration order.

// HeapObjectExport is one live or quarantined allocation in a HeapExport.
type HeapObjectExport struct {
	ID        uint64
	Size      int
	Data      []byte
	Freed     bool
	AllocSite string
	FreeSite  string
}

// HeapExport is the Heap's portable checkpoint blob.
type HeapExport struct {
	Objects    []HeapObjectExport // sorted by ID
	NextID     uint64
	Quarantine []uint64
	QuarCap    int
	Allocs     uint64
	Frees      uint64
}

// Export implements snap.Subsystem.
func (h *Heap) Export() any {
	st := h.Checkpoint().(*heapState)
	e := &HeapExport{
		Objects: make([]HeapObjectExport, 0, len(st.objects)),
		NextID:  st.nextID,
		QuarCap: st.quarCap,
		Allocs:  st.allocs,
		Frees:   st.frees,
	}
	for id, obj := range st.objects { //droidvet:nondet collect-then-sort map export
		e.Objects = append(e.Objects, HeapObjectExport{
			ID:        id,
			Size:      obj.size,
			Data:      obj.data, // checkpoint already deep-copied
			Freed:     obj.state == stateFreed,
			AllocSite: obj.allocSite,
			FreeSite:  obj.freeSite,
		})
	}
	sort.Slice(e.Objects, func(i, j int) bool { return e.Objects[i].ID < e.Objects[j].ID })
	if len(e.Objects) == 0 {
		// Canonical form: empty collections export as nil, matching what a
		// gob round trip decodes — sanitize builds compare re-exports
		// against decoded blobs with reflect.DeepEqual.
		e.Objects = nil
	}
	if st.quarantine != nil {
		e.Quarantine = append([]uint64(nil), st.quarantine...)
	}
	return e
}

// Import implements snap.Subsystem.
func (h *Heap) Import(b any) {
	e := b.(*HeapExport)
	objects := make(map[uint64]object, len(e.Objects))
	for _, oe := range e.Objects {
		st := stateLive
		if oe.Freed {
			st = stateFreed
		}
		objects[oe.ID] = object{
			id:        oe.ID,
			size:      oe.Size,
			data:      oe.Data, // Restore deep-copies out of the payload
			state:     st,
			allocSite: oe.AllocSite,
			freeSite:  oe.FreeSite,
		}
	}
	h.Restore(&heapState{
		objects:    objects,
		nextID:     e.NextID,
		quarantine: e.Quarantine,
		quarCap:    e.QuarCap,
		allocs:     e.Allocs,
		frees:      e.Frees,
	})
	h.Touch()
}
