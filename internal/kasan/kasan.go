// Package kasan implements a Kernel Address Sanitizer analog for the virtual
// kernel. Drivers allocate objects from a virtual slab heap; every load and
// store is checked against the object's lifetime and bounds, so
// use-after-free, out-of-bounds, double-free and invalid-access bugs fire at
// the same program points a real KASAN build would report them.
//
// Freed objects are kept in a quarantine (as real KASAN does) so that
// delayed use-after-free accesses are still attributed to the original
// allocation rather than a recycled one.
package kasan

import (
	"fmt"
	"sync"

	"droidfuzz/internal/snap"
)

// BugClass identifies the kind of memory error detected.
type BugClass int

const (
	// UseAfterFree is an access to an object after it has been freed.
	UseAfterFree BugClass = iota
	// OutOfBounds is an access past the bounds of a live object.
	OutOfBounds
	// DoubleFree is a second free of an already-freed object.
	DoubleFree
	// InvalidAccess is an access to an address that was never allocated.
	InvalidAccess
	// InvalidFree is a free of an address that was never allocated.
	InvalidFree
)

// String returns the KASAN-style class name used in report titles.
func (c BugClass) String() string {
	switch c {
	case UseAfterFree:
		return "slab-use-after-free"
	case OutOfBounds:
		return "slab-out-of-bounds"
	case DoubleFree:
		return "double-free"
	case InvalidAccess:
		return "invalid-access"
	case InvalidFree:
		return "invalid-free"
	default:
		return fmt.Sprintf("BugClass(%d)", int(c))
	}
}

// AccessKind distinguishes reads from writes in reports.
type AccessKind int

const (
	// Read access.
	Read AccessKind = iota
	// Write access.
	Write
)

// String returns "Read" or "Write" as in KASAN report headers.
func (k AccessKind) String() string {
	if k == Write {
		return "Write"
	}
	return "Read"
}

// Report describes one detected memory error, in the shape of a KASAN splat:
// class, access kind, faulting site, and the object's alloc/free history.
type Report struct {
	Class     BugClass
	Access    AccessKind
	Site      string // function where the bad access happened
	Object    uint64 // virtual object id
	Size      int    // object size at allocation
	Offset    int    // access offset within/past the object
	AllocSite string
	FreeSite  string
}

// Title renders the syzkaller-style crash title, e.g.
// "KASAN: slab-use-after-free Read in bt_accept_unlink".
func (r *Report) Title() string {
	return fmt.Sprintf("KASAN: %s %s in %s", r.Class, r.Access, r.Site)
}

// String renders a multi-line report body resembling a kernel splat.
func (r *Report) String() string {
	s := "==================================================================\n"
	s += "BUG: " + r.Title() + "\n"
	s += fmt.Sprintf("%s of size at offset %d in object %#x (size %d)\n",
		r.Access, r.Offset, r.Object, r.Size)
	if r.AllocSite != "" {
		s += "Allocated by " + r.AllocSite + "\n"
	}
	if r.FreeSite != "" {
		s += "Freed by " + r.FreeSite + "\n"
	}
	s += "=================================================================="
	return s
}

type objState int

const (
	stateLive objState = iota
	stateFreed
)

type object struct {
	id        uint64
	size      int
	data      []byte
	state     objState
	allocSite string
	freeSite  string
}

// Heap is the virtual slab allocator. All driver-owned dynamic objects live
// here; handles (object ids) stand in for kernel pointers. The zero value is
// not usable; call NewHeap.
type Heap struct {
	snap.Dirty

	mu         sync.Mutex
	objects    map[uint64]*object
	nextID     uint64
	quarantine []uint64 // freed object ids, oldest first
	quarCap    int
	reports    []*Report
	allocs     uint64
	frees      uint64
}

// DefaultQuarantine is the default number of freed objects retained for
// use-after-free attribution.
const DefaultQuarantine = 4096

// NewHeap returns an empty heap whose quarantine holds up to quarCap freed
// objects (DefaultQuarantine if quarCap <= 0).
func NewHeap(quarCap int) *Heap {
	if quarCap <= 0 {
		quarCap = DefaultQuarantine
	}
	return &Heap{
		objects: make(map[uint64]*object),
		nextID:  1,
		quarCap: quarCap,
	}
}

// Alloc allocates a zeroed object of the given size and returns its handle.
// site names the allocating function for later reports.
func (h *Heap) Alloc(size int, site string) uint64 {
	if size < 0 {
		size = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.nextID
	h.nextID++
	h.objects[id] = &object{
		id:        id,
		size:      size,
		data:      make([]byte, size),
		state:     stateLive,
		allocSite: site,
	}
	h.allocs++
	h.Touch()
	return id
}

// Free releases the object. A second free or a free of an unknown handle is
// recorded as a bug report and returned.
func (h *Heap) Free(id uint64, site string) *Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	obj, ok := h.objects[id]
	if !ok {
		return h.report(&Report{
			Class: InvalidFree, Access: Write, Site: site, Object: id,
		})
	}
	if obj.state == stateFreed {
		return h.report(&Report{
			Class: DoubleFree, Access: Write, Site: site, Object: id,
			Size: obj.size, AllocSite: obj.allocSite, FreeSite: obj.freeSite,
		})
	}
	obj.state = stateFreed
	obj.freeSite = site
	h.frees++
	h.Touch()
	h.quarantine = append(h.quarantine, id)
	if len(h.quarantine) > h.quarCap {
		evict := h.quarantine[0]
		h.quarantine = h.quarantine[1:]
		delete(h.objects, evict)
	}
	return nil
}

// Load reads n bytes at offset off from the object. On a memory error the
// returned report is non-nil and the data is nil.
func (h *Heap) Load(id uint64, off, n int, site string) ([]byte, *Report) {
	h.mu.Lock()
	defer h.mu.Unlock()
	obj, rep := h.check(id, off, n, Read, site)
	if rep != nil {
		return nil, rep
	}
	out := make([]byte, n)
	copy(out, obj.data[off:off+n])
	return out, nil
}

// Store writes p to the object at offset off, returning a report on error.
func (h *Heap) Store(id uint64, off int, p []byte, site string) *Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	obj, rep := h.check(id, off, len(p), Write, site)
	if rep != nil {
		return rep
	}
	copy(obj.data[off:off+len(p)], p)
	h.Touch()
	return nil
}

// check validates an access under h.mu and records a report on failure.
func (h *Heap) check(id uint64, off, n int, access AccessKind, site string) (*object, *Report) {
	obj, ok := h.objects[id]
	if !ok {
		return nil, h.report(&Report{
			Class: InvalidAccess, Access: access, Site: site, Object: id, Offset: off,
		})
	}
	if obj.state == stateFreed {
		return nil, h.report(&Report{
			Class: UseAfterFree, Access: access, Site: site, Object: id,
			Size: obj.size, Offset: off,
			AllocSite: obj.allocSite, FreeSite: obj.freeSite,
		})
	}
	if off < 0 || n < 0 || off+n > obj.size {
		return nil, h.report(&Report{
			Class: OutOfBounds, Access: access, Site: site, Object: id,
			Size: obj.size, Offset: off + n, AllocSite: obj.allocSite,
		})
	}
	return obj, nil
}

func (h *Heap) report(r *Report) *Report {
	h.reports = append(h.reports, r)
	h.Touch()
	return r
}

// Live reports whether the handle refers to a live (allocated, unfreed)
// object. It performs no access and records no report.
func (h *Heap) Live(id uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	obj, ok := h.objects[id]
	return ok && obj.state == stateLive
}

// Reports returns all memory-error reports recorded so far, oldest first.
func (h *Heap) Reports() []*Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Report, len(h.reports))
	copy(out, h.reports)
	return out
}

// TakeReports returns and clears the recorded reports.
func (h *Heap) TakeReports() []*Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := h.reports
	h.reports = nil
	return out
}

// Stats reports lifetime allocation and free counts.
func (h *Heap) Stats() (allocs, frees uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocs, h.frees
}

// LiveObjects reports the number of currently live objects.
func (h *Heap) LiveObjects() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	// Order-independent count; identical in any map iteration order.
	for _, obj := range h.objects { //droidvet:nondet order-independent count
		if obj.state == stateLive {
			n++
		}
	}
	return n
}
