package kasan

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocLoadStoreFree(t *testing.T) {
	h := NewHeap(0)
	id := h.Alloc(16, "test_alloc")
	if rep := h.Store(id, 4, []byte{1, 2, 3, 4}, "test_store"); rep != nil {
		t.Fatalf("store: %v", rep)
	}
	data, rep := h.Load(id, 4, 4, "test_load")
	if rep != nil {
		t.Fatalf("load: %v", rep)
	}
	if data[0] != 1 || data[3] != 4 {
		t.Fatalf("data = %v", data)
	}
	if !h.Live(id) {
		t.Fatal("object should be live")
	}
	if rep := h.Free(id, "test_free"); rep != nil {
		t.Fatalf("free: %v", rep)
	}
	if h.Live(id) {
		t.Fatal("object should be freed")
	}
	allocs, frees := h.Stats()
	if allocs != 1 || frees != 1 {
		t.Fatalf("stats = %d/%d", allocs, frees)
	}
}

func TestUseAfterFree(t *testing.T) {
	h := NewHeap(0)
	id := h.Alloc(8, "alloc_site")
	h.Free(id, "free_site")
	_, rep := h.Load(id, 0, 4, "bt_accept_unlink")
	if rep == nil {
		t.Fatal("UAF not detected")
	}
	if rep.Class != UseAfterFree || rep.Access != Read {
		t.Fatalf("class/access = %v/%v", rep.Class, rep.Access)
	}
	want := "KASAN: slab-use-after-free Read in bt_accept_unlink"
	if rep.Title() != want {
		t.Fatalf("title = %q, want %q", rep.Title(), want)
	}
	if rep.AllocSite != "alloc_site" || rep.FreeSite != "free_site" {
		t.Fatalf("sites = %q/%q", rep.AllocSite, rep.FreeSite)
	}
	if rep2 := h.Store(id, 0, []byte{1}, "w"); rep2 == nil || rep2.Access != Write {
		t.Fatal("UAF write not detected")
	}
}

func TestOutOfBounds(t *testing.T) {
	h := NewHeap(0)
	id := h.Alloc(8, "a")
	if _, rep := h.Load(id, 6, 4, "oob_read"); rep == nil || rep.Class != OutOfBounds {
		t.Fatal("OOB read not detected")
	}
	if rep := h.Store(id, 8, []byte{1}, "oob_write"); rep == nil || rep.Class != OutOfBounds {
		t.Fatal("OOB write not detected")
	}
	if _, rep := h.Load(id, -1, 2, "neg"); rep == nil {
		t.Fatal("negative offset not detected")
	}
	// Boundary access is legal.
	if _, rep := h.Load(id, 0, 8, "full"); rep != nil {
		t.Fatalf("full-size load failed: %v", rep)
	}
}

func TestDoubleAndInvalidFree(t *testing.T) {
	h := NewHeap(0)
	id := h.Alloc(8, "a")
	h.Free(id, "f1")
	if rep := h.Free(id, "f2"); rep == nil || rep.Class != DoubleFree {
		t.Fatal("double free not detected")
	}
	if rep := h.Free(0xdead, "f3"); rep == nil || rep.Class != InvalidFree {
		t.Fatal("invalid free not detected")
	}
}

func TestInvalidAccess(t *testing.T) {
	h := NewHeap(0)
	_, rep := h.Load(0xdeadbeef, 0, 8, "hci_read_supported_codecs")
	if rep == nil || rep.Class != InvalidAccess {
		t.Fatal("invalid access not detected")
	}
	if !strings.Contains(rep.Title(), "invalid-access") {
		t.Fatalf("title = %q", rep.Title())
	}
}

func TestQuarantineEviction(t *testing.T) {
	h := NewHeap(2)
	a := h.Alloc(8, "a")
	b := h.Alloc(8, "b")
	c := h.Alloc(8, "c")
	h.Free(a, "f")
	h.Free(b, "f")
	// a and b are quarantined; freeing c evicts a.
	h.Free(c, "f")
	if _, rep := h.Load(a, 0, 1, "r"); rep == nil || rep.Class != InvalidAccess {
		t.Fatal("evicted object should report invalid access")
	}
	if _, rep := h.Load(b, 0, 1, "r"); rep == nil || rep.Class != UseAfterFree {
		t.Fatal("quarantined object should report UAF")
	}
}

func TestReportsAccumulateAndDrain(t *testing.T) {
	h := NewHeap(0)
	id := h.Alloc(4, "a")
	h.Free(id, "f")
	h.Load(id, 0, 1, "r1")
	h.Load(id, 0, 1, "r2")
	if len(h.Reports()) != 2 {
		t.Fatalf("reports = %d, want 2", len(h.Reports()))
	}
	if len(h.TakeReports()) != 2 {
		t.Fatal("take failed")
	}
	if len(h.Reports()) != 0 {
		t.Fatal("take did not clear")
	}
}

// TestNoFalsePositives runs random valid operations against a model and
// checks the heap never reports a bug for them.
func TestNoFalsePositives(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap(0)
		type obj struct {
			id   uint64
			size int
		}
		var live []obj
		for i := 0; i < 200; i++ {
			switch {
			case len(live) == 0 || rng.Intn(3) == 0:
				size := rng.Intn(64) + 1
				live = append(live, obj{h.Alloc(size, "a"), size})
			case rng.Intn(4) == 0:
				k := rng.Intn(len(live))
				if rep := h.Free(live[k].id, "f"); rep != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			default:
				o := live[rng.Intn(len(live))]
				off := rng.Intn(o.size)
				n := rng.Intn(o.size - off)
				if _, rep := h.Load(o.id, off, n, "r"); rep != nil {
					return false
				}
				if rep := h.Store(o.id, off, make([]byte, n), "w"); rep != nil {
					return false
				}
			}
		}
		return len(h.Reports()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveObjects(t *testing.T) {
	h := NewHeap(0)
	a := h.Alloc(8, "a")
	h.Alloc(8, "b")
	if h.LiveObjects() != 2 {
		t.Fatalf("live = %d, want 2", h.LiveObjects())
	}
	h.Free(a, "f")
	if h.LiveObjects() != 1 {
		t.Fatalf("live = %d, want 1", h.LiveObjects())
	}
}
