package kasan

// Heap checkpoint/restore. The post-boot heap is empty (drivers allocate
// only while servicing syscalls), so the common snapshot is trivially
// small, but Checkpoint deep-copies whatever is live so the contract holds
// for any capture point.

type heapState struct {
	objects    map[uint64]object // deep copies, including backing data
	nextID     uint64
	quarantine []uint64
	quarCap    int
	allocs     uint64
	frees      uint64
}

// Checkpoint implements snap.Subsystem.
func (h *Heap) Checkpoint() any {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := &heapState{
		objects: make(map[uint64]object, len(h.objects)),
		nextID:  h.nextID,
		quarCap: h.quarCap,
		allocs:  h.allocs,
		frees:   h.frees,
	}
	for id, obj := range h.objects { //droidvet:nondet order-independent map copy
		cc := *obj
		cc.data = make([]byte, len(obj.data))
		copy(cc.data, obj.data)
		st.objects[id] = cc
	}
	if h.quarantine != nil {
		st.quarantine = make([]uint64, len(h.quarantine))
		copy(st.quarantine, h.quarantine)
	}
	return st
}

// Restore implements snap.Subsystem. Pending reports are dropped: a restore
// happens after the broker drained the previous execution's fallout.
func (h *Heap) Restore(s any) {
	st := s.(*heapState)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.objects = make(map[uint64]*object, len(st.objects))
	for id, obj := range st.objects { //droidvet:nondet order-independent map copy
		cc := obj
		cc.data = make([]byte, len(obj.data))
		copy(cc.data, obj.data)
		h.objects[id] = &cc
	}
	h.nextID = st.nextID
	h.quarantine = nil
	if st.quarantine != nil {
		h.quarantine = make([]uint64, len(st.quarantine))
		copy(h.quarantine, st.quarantine)
	}
	h.quarCap = st.quarCap
	h.allocs = st.allocs
	h.frees = st.frees
	h.reports = nil
}
