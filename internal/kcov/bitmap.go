package kcov

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

const (
	// bitmapBlockBits is the PC range one block covers: the low 16 bits.
	bitmapBlockBits = 1 << 16
	// bitmapBlockWords is the uint64 word count per block (8 KiB of bits).
	bitmapBlockWords = bitmapBlockBits / 64
	// bitmapBlocks is the top-level fanout: the high 16 bits of the PC.
	bitmapBlocks = 1 << 16
)

// bitmapBlock holds membership bits for one 64K-PC range.
type bitmapBlock [bitmapBlockWords]atomic.Uint64

// Bitmap is a dense two-level atomic bitmap over the 32-bit PC space, the
// fleet-scale replacement for a mutex-guarded Set: merging a trace is one
// atomic OR per PC with no lock, no map probe and no allocation, so any
// number of engines can fold coverage into shared state concurrently.
// Blocks are allocated lazily on first touch (driver PCs are FNV hashes, so
// a campaign touches a few hundred of the 65536 blocks at most).
//
// The zero value is not usable; call NewBitmap. All methods are safe for
// concurrent use. Count is maintained incrementally: Add and MergeTrace
// report exactly the bits they were first to set, which is what the
// accumulator's new-coverage arithmetic needs.
type Bitmap struct {
	blocks [bitmapBlocks]atomic.Pointer[bitmapBlock]
	count  atomic.Int64
}

// NewBitmap returns an empty bitmap.
func NewBitmap() *Bitmap {
	return &Bitmap{}
}

// block returns the block for the given high-16 index, allocating it on
// first use. Concurrent first touches race through CAS; the loser's block
// is discarded before any bit is set in it.
func (b *Bitmap) block(hi uint32) *bitmapBlock {
	if blk := b.blocks[hi].Load(); blk != nil {
		return blk
	}
	fresh := new(bitmapBlock)
	if b.blocks[hi].CompareAndSwap(nil, fresh) {
		return fresh
	}
	return b.blocks[hi].Load()
}

// Add sets the bit for pc and reports whether this call was the one that
// set it (i.e. the PC is new coverage).
func (b *Bitmap) Add(pc uint32) bool {
	blk := b.block(pc >> 16)
	w := &blk[(pc&0xffff)>>6]
	mask := uint64(1) << (pc & 63)
	if w.Load()&mask != 0 {
		return false
	}
	if w.Or(mask)&mask != 0 {
		return false // another goroutine won the race for this bit
	}
	b.count.Add(1)
	return true
}

// Has reports whether pc has been added.
func (b *Bitmap) Has(pc uint32) bool {
	blk := b.blocks[pc>>16].Load()
	if blk == nil {
		return false
	}
	return blk[(pc&0xffff)>>6].Load()&(uint64(1)<<(pc&63)) != 0
}

// MergeTrace folds a raw trace into the bitmap and returns how many PCs
// this call newly covered — the same contract as Set.MergeTrace.
func (b *Bitmap) MergeTrace(trace []uint32) int {
	added := 0
	for _, pc := range trace {
		if b.Add(pc) {
			added++
		}
	}
	return added
}

// Count reports the number of distinct PCs added.
func (b *Bitmap) Count() int {
	return int(b.count.Load())
}

// Sorted returns the covered PCs in ascending order; the block/word/bit
// scan yields them sorted by construction, matching Set.Sorted output.
func (b *Bitmap) Sorted() []uint32 {
	out := make([]uint32, 0, b.Count())
	for hi := 0; hi < bitmapBlocks; hi++ {
		blk := b.blocks[hi].Load()
		if blk == nil {
			continue
		}
		base := uint32(hi) << 16
		for wi := 0; wi < bitmapBlockWords; wi++ {
			w := blk[wi].Load()
			for ; w != 0; w &= w - 1 {
				bit := uint32(bits.TrailingZeros64(w))
				out = append(out, base|uint32(wi)<<6|bit)
			}
		}
	}
	return out
}

// String summarizes the bitmap for logs.
func (b *Bitmap) String() string {
	return fmt.Sprintf("kcov.Bitmap(%d pcs)", b.Count())
}
