package kcov

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestBitmapMatchesSet: the bitmap is a drop-in for the map-backed Set —
// identical MergeTrace added-counts, membership, count and sorted output
// over randomized traces spanning sparse and dense PC ranges.
func TestBitmapMatchesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBitmap()
	s := make(Set)
	for round := 0; round < 50; round++ {
		trace := make([]uint32, rng.Intn(400))
		for i := range trace {
			switch rng.Intn(3) {
			case 0: // dense low range, lots of duplicates
				trace[i] = uint32(rng.Intn(512))
			case 1: // hashed-PC-like spread
				trace[i] = rng.Uint32()
			default: // word/block boundary PCs
				trace[i] = uint32(rng.Intn(4))<<16 | uint32(rng.Intn(2))<<6 | uint32(rng.Intn(64))
			}
		}
		if ba, sa := b.MergeTrace(trace), s.MergeTrace(trace); ba != sa {
			t.Fatalf("round %d: bitmap added %d, set added %d", round, ba, sa)
		}
		if b.Count() != s.Len() {
			t.Fatalf("round %d: bitmap count %d, set len %d", round, b.Count(), s.Len())
		}
	}
	if !reflect.DeepEqual(b.Sorted(), s.Sorted()) {
		t.Fatal("bitmap and set sorted outputs diverge")
	}
	for _, pc := range s.Sorted() {
		if !b.Has(pc) {
			t.Fatalf("bitmap missing pc %#x", pc)
		}
	}
	for _, pc := range []uint32{0, 63, 64, 1 << 16, 0xffffffff} {
		if b.Has(pc) != s.Has(pc) {
			t.Fatalf("membership of %#x diverges", pc)
		}
	}
}

// TestBitmapAddFirstWins: Add reports true exactly once per PC.
func TestBitmapAddFirstWins(t *testing.T) {
	b := NewBitmap()
	if !b.Add(7) || b.Add(7) {
		t.Fatal("Add novelty report wrong")
	}
	if !b.Add(0) { // PC 0 is a valid bit even though kcov reserves it
		t.Fatal("Add(0) not new")
	}
	if b.Count() != 2 {
		t.Fatalf("count = %d, want 2", b.Count())
	}
}

// TestBitmapConcurrentMerge: engines merging overlapping traces in parallel
// must account every distinct PC exactly once across all added-counts.
func TestBitmapConcurrentMerge(t *testing.T) {
	b := NewBitmap()
	const workers = 8
	const perWorker = 4000
	distinct := make(map[uint32]struct{})
	traces := make([][]uint32, workers)
	seed := rand.New(rand.NewSource(99))
	for w := range traces {
		traces[w] = make([]uint32, perWorker)
		for i := range traces[w] {
			pc := seed.Uint32() % 50000 // heavy cross-worker overlap
			traces[w][i] = pc
			distinct[pc] = struct{}{}
		}
	}
	var wg sync.WaitGroup
	added := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			added[w] = b.MergeTrace(traces[w])
		}(w)
	}
	wg.Wait()
	total := 0
	for _, a := range added {
		total += a
	}
	if total != len(distinct) || b.Count() != len(distinct) {
		t.Fatalf("added sum %d, count %d, want %d", total, b.Count(), len(distinct))
	}
}

// TestCollectorConcurrentHits: parallel Hit callers (native executor + HAL
// goroutines) must neither lose claimed slots nor corrupt the trace.
func TestCollectorConcurrentHits(t *testing.T) {
	c := NewCollector(1 << 12)
	c.Enable()
	const workers = 4
	const hits = 2000 // workers*hits > cap, so overflow is exercised too
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < hits; i++ {
				c.Hit(uint32(w)<<16 | uint32(i) | 1)
			}
		}(w)
	}
	wg.Wait()
	trace := c.Trace()
	if len(trace) != 1<<12 {
		t.Fatalf("trace len = %d, want %d", len(trace), 1<<12)
	}
	if got := int(c.Dropped()); got != workers*hits-(1<<12) {
		t.Fatalf("dropped = %d, want %d", got, workers*hits-(1<<12))
	}
	for i, pc := range trace {
		if pc == 0 {
			t.Fatalf("slot %d never written", i)
		}
	}
}
