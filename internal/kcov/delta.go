package kcov

import "errors"

// Delta codec for PC traces crossing the executor wire (transport v2).
//
// A kcov trace is an ordered sequence of 32-bit PCs whose consecutive values
// cluster tightly — loops revisit neighbouring driver blocks — so encoding
// each PC as the zigzag-mapped difference from its predecessor in LEB128
// varint form shrinks the common case to one or two bytes per hit while
// remaining lossless for arbitrary (including unsorted) traces. Order is
// preserved: the decoder reproduces the exact input sequence, so per-call
// attribution and directional feedback survive the round trip.

var (
	// ErrDeltaTruncated reports a varint cut off mid-value.
	ErrDeltaTruncated = errors.New("kcov: truncated delta stream")
	// ErrDeltaCorrupt reports a decoded value outside the uint32 PC range
	// or an over-long varint.
	ErrDeltaCorrupt = errors.New("kcov: corrupt delta stream")
)

// AppendDelta appends the delta-zigzag-varint encoding of trace onto dst,
// reusing dst's capacity, and returns the extended slice. The empty trace
// encodes to zero bytes.
func AppendDelta(dst []byte, trace []uint32) []byte {
	prev := int64(0)
	for _, pc := range trace {
		d := int64(pc) - prev
		u := uint64(d<<1) ^ uint64(d>>63) // zigzag: small magnitudes stay small
		for u >= 0x80 {
			dst = append(dst, byte(u)|0x80)
			u >>= 7
		}
		dst = append(dst, byte(u))
		prev = int64(pc)
	}
	return dst
}

// DecodeDelta appends the PCs encoded in data onto dst, reusing dst's
// capacity, and returns the extended slice. It fails on truncated varints
// and on streams that decode outside the 32-bit PC range.
func DecodeDelta(dst []uint32, data []byte) ([]uint32, error) {
	prev := int64(0)
	for i := 0; i < len(data); {
		var u uint64
		shift := uint(0)
		for {
			if i >= len(data) {
				return dst, ErrDeltaTruncated
			}
			b := data[i]
			i++
			if shift == 63 && b > 1 {
				return dst, ErrDeltaCorrupt
			}
			u |= uint64(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
			if shift > 63 {
				return dst, ErrDeltaCorrupt
			}
		}
		d := int64(u>>1) ^ -int64(u&1)
		v := prev + d
		if v < 0 || v > int64(^uint32(0)) {
			return dst, ErrDeltaCorrupt
		}
		dst = append(dst, uint32(v))
		prev = v
	}
	return dst, nil
}
