package kcov

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func roundTrip(t *testing.T, trace []uint32) []byte {
	t.Helper()
	enc := AppendDelta(nil, trace)
	dec, err := DecodeDelta(nil, enc)
	if err != nil {
		t.Fatalf("decode(%v): %v", trace, err)
	}
	if len(dec) != len(trace) {
		t.Fatalf("round trip length: got %d, want %d", len(dec), len(trace))
	}
	for i := range trace {
		if dec[i] != trace[i] {
			t.Fatalf("round trip[%d]: got %#x, want %#x (trace %v)", i, dec[i], trace[i], trace)
		}
	}
	return enc
}

func TestDeltaRoundTrip(t *testing.T) {
	cases := map[string][]uint32{
		"empty":      nil,
		"single":     {0xc0de0040},
		"single-0":   {0},
		"max-u32":    {math.MaxUint32},
		"all-max":    {math.MaxUint32, math.MaxUint32, math.MaxUint32},
		"ascending":  {1, 2, 3, 100, 1000, 1 << 30},
		"unsorted":   {0xc0de0400, 0xc0de0040, 0, math.MaxUint32, 7, 7},
		"zigzag":     {100, 0, math.MaxUint32, 0, math.MaxUint32},
		"dense-loop": {0x1000, 0x1004, 0x1008, 0x1004, 0x1008, 0x1004, 0x1008},
	}
	for name, trace := range cases {
		t.Run(name, func(t *testing.T) {
			if enc := roundTrip(t, trace); len(trace) == 0 && len(enc) != 0 {
				t.Fatalf("empty trace encoded to %d bytes", len(enc))
			}
		})
	}
}

func TestDeltaRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		trace := make([]uint32, rng.Intn(500))
		base := uint32(rng.Uint64())
		for i := range trace {
			if rng.Intn(4) == 0 {
				trace[i] = uint32(rng.Uint64()) // far jump
			} else {
				trace[i] = base + uint32(rng.Intn(64))*4 // clustered, like kcov
			}
		}
		roundTrip(t, trace)
	}
}

// Clustered traces are what the codec exists for: consecutive PCs within a
// driver should cost one or two bytes, far below the 4-byte flat encoding.
func TestDeltaCompressesClusteredTraces(t *testing.T) {
	trace := make([]uint32, 256)
	for i := range trace {
		trace[i] = 0xc0de0000 + uint32(i%96)*4
	}
	enc := roundTrip(t, trace)
	if flat := 4 * len(trace); len(enc) >= flat/2 {
		t.Fatalf("clustered trace: %d delta bytes vs %d flat, want < half", len(enc), flat)
	}
}

func TestDeltaAppendsOntoDst(t *testing.T) {
	prefix := []byte{0xaa, 0xbb}
	enc := AppendDelta(prefix, []uint32{5, 6})
	if !bytes.Equal(enc[:2], prefix[:2]) {
		t.Fatalf("prefix clobbered: %x", enc)
	}
	dec, err := DecodeDelta([]uint32{1}, enc[2:])
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || dec[0] != 1 || dec[1] != 5 || dec[2] != 6 {
		t.Fatalf("decode onto dst: %v", dec)
	}
}

func TestDeltaDecodeErrors(t *testing.T) {
	// Truncated varint: continuation bit set on the final byte.
	if _, err := DecodeDelta(nil, []byte{0x80}); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Over-long varint (11 continuation bytes can't happen for uint64).
	long := bytes.Repeat([]byte{0x80}, 11)
	if _, err := DecodeDelta(nil, append(long, 0x01)); err == nil {
		t.Fatal("over-long varint accepted")
	}
	// A delta walking below zero is corrupt (first value negative).
	if _, err := DecodeDelta(nil, AppendDelta(nil, nil)); err != nil {
		t.Fatalf("empty stream rejected: %v", err)
	}
	neg := []byte{0x01} // zigzag(-1) as first delta -> PC -1
	if _, err := DecodeDelta(nil, neg); err == nil {
		t.Fatal("negative PC accepted")
	}
}
