// Package kcov provides a kernel code-coverage collector modeled after the
// Linux kcov facility. The virtual kernel and its drivers record
// program-counter hits into a per-execution trace buffer, which the fuzzing
// harness slices per call and folds into deduplicated coverage sets.
//
// Real kcov exposes a ring of PC values written by compiler instrumentation.
// Here, cover points are declared explicitly by driver code via PC, which
// derives a stable 32-bit identifier from the (module, site) pair so that
// coverage is comparable across runs and devices.
package kcov

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
)

// PC derives a stable program-counter identifier for a cover point. Module is
// typically a driver name ("tcpc") and site a small integer unique within the
// module (one per basic block the driver wants to expose).
func PC(module string, site uint32) uint32 {
	h := fnv.New32a()
	h.Write([]byte(module))
	h.Write([]byte{byte(site), byte(site >> 8), byte(site >> 16), byte(site >> 24)})
	pc := h.Sum32()
	if pc == 0 { // reserve 0 as "no PC"
		pc = 1
	}
	return pc
}

// Collector accumulates PC hits for a single execution. It mirrors the
// per-task kcov buffer: Enable/Disable bracket a traced region, Hit appends,
// and Trace returns the ordered hit sequence.
//
// A Collector is safe for concurrent use; the virtual kernel may be entered
// from both the native executor and HAL service goroutines. Hit is the
// device-side hot path — every driver cover point lands here — so it takes
// no lock: a fetch-add on the write index claims a slot in a fixed buffer
// and an atomic store fills it. Claims past capacity are counted as dropped,
// matching kcov overflow behavior.
type Collector struct {
	enabled atomic.Bool
	// pos counts slots claimed while enabled; values beyond max represent
	// overflow (the excess is also tallied in dropped).
	pos     atomic.Uint64
	dropped atomic.Uint64
	max     int
	buf     []uint32
}

// DefaultTraceCap is the default maximum number of PC entries retained per
// execution, mirroring kcov's fixed-size coverage buffer.
const DefaultTraceCap = 1 << 16

// NewCollector returns a collector retaining at most max PC hits per
// execution. If max <= 0, DefaultTraceCap is used.
func NewCollector(max int) *Collector {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Collector{max: max, buf: make([]uint32, max)}
}

// Enable starts tracing. Hits recorded while disabled are ignored, like
// KCOV_ENABLE gating in the real facility.
func (c *Collector) Enable() {
	c.enabled.Store(true)
}

// Disable stops tracing without clearing the buffer.
func (c *Collector) Disable() {
	c.enabled.Store(false)
}

// Reset clears the trace buffer, keeping the enabled state. Reset must not
// race with Hit on the same execution window; the executor brackets each
// execution with Reset/Enable before the kernel runs.
func (c *Collector) Reset() {
	c.pos.Store(0)
	c.dropped.Store(0)
}

// Hit records one cover-point hit if tracing is enabled: claim a slot with
// one atomic add, store the PC with one atomic write. Hits beyond the
// buffer capacity are counted as dropped.
func (c *Collector) Hit(pc uint32) {
	if !c.enabled.Load() {
		return
	}
	i := c.pos.Add(1) - 1
	if i >= uint64(c.max) {
		c.dropped.Add(1)
		return
	}
	atomic.StoreUint32(&c.buf[i], pc)
}

// length returns the number of retained trace entries.
func (c *Collector) length() int {
	n := c.pos.Load()
	if n > uint64(c.max) {
		n = uint64(c.max)
	}
	return int(n)
}

// Mark returns the current trace length. Together with Slice it lets the
// executor attribute coverage to individual calls in a program.
func (c *Collector) Mark() int {
	return c.length()
}

// Slice returns a copy of the trace from mark to the current position.
func (c *Collector) Slice(mark int) []uint32 {
	n := c.length()
	if mark < 0 || mark > n {
		return nil
	}
	out := make([]uint32, n-mark)
	for i := mark; i < n; i++ {
		out[i-mark] = atomic.LoadUint32(&c.buf[i])
	}
	return out
}

// Trace returns a copy of the full ordered PC trace for this execution.
func (c *Collector) Trace() []uint32 {
	return c.Slice(0)
}

// AppendTo appends the trace from mark to the current position onto dst,
// reusing dst's capacity — the allocation-free variant of Slice used by the
// pooled execution-result path.
func (c *Collector) AppendTo(dst []uint32, mark int) []uint32 {
	n := c.length()
	if mark < 0 || mark > n {
		return dst
	}
	for i := mark; i < n; i++ {
		dst = append(dst, atomic.LoadUint32(&c.buf[i]))
	}
	return dst
}

// Dropped reports how many hits were discarded due to buffer overflow.
func (c *Collector) Dropped() uint64 {
	return c.dropped.Load()
}

// Set is a deduplicated coverage signal: the set of distinct PCs observed.
type Set map[uint32]struct{}

// NewSet builds a Set from a raw trace.
func NewSet(trace []uint32) Set {
	s := make(Set, len(trace))
	for _, pc := range trace {
		s[pc] = struct{}{}
	}
	return s
}

// Len reports the number of distinct PCs.
func (s Set) Len() int { return len(s) }

// Has reports whether pc is covered.
func (s Set) Has(pc uint32) bool {
	_, ok := s[pc]
	return ok
}

// Merge adds all PCs in other to s and returns the number newly added.
func (s Set) Merge(other Set) int {
	added := 0
	// Set union: membership and the added-count are order-independent,
	// so iteration order cannot desynchronize a replay.
	for pc := range other { //droidvet:nondet order-independent set union
		if _, ok := s[pc]; !ok {
			s[pc] = struct{}{}
			added++
		}
	}
	return added
}

// MergeTrace adds all PCs in a raw trace to s, returning the number added.
func (s Set) MergeTrace(trace []uint32) int {
	added := 0
	for _, pc := range trace {
		if _, ok := s[pc]; !ok {
			s[pc] = struct{}{}
			added++
		}
	}
	return added
}

// Diff returns the PCs present in other but not in s.
func (s Set) Diff(other Set) Set {
	d := make(Set)
	// Set difference: the resulting membership is order-independent.
	for pc := range other { //droidvet:nondet order-independent set difference
		if _, ok := s[pc]; !ok {
			d[pc] = struct{}{}
		}
	}
	return d
}

// Sorted returns the covered PCs in ascending order; useful for stable
// serialization and tests.
func (s Set) Sorted() []uint32 {
	out := make([]uint32, 0, len(s))
	for pc := range s {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the set for logs.
func (s Set) String() string {
	return fmt.Sprintf("kcov.Set(%d pcs)", len(s))
}
