package kcov

import (
	"testing"
	"testing/quick"
)

func TestPCStableAndNonZero(t *testing.T) {
	a := PC("tcpc", 10)
	b := PC("tcpc", 10)
	if a != b {
		t.Fatalf("PC not stable: %d != %d", a, b)
	}
	if a == 0 {
		t.Fatal("PC returned reserved value 0")
	}
	if PC("tcpc", 11) == a {
		t.Fatal("different sites collided")
	}
	if PC("hci", 10) == a {
		t.Fatal("different modules collided")
	}
}

func TestPCNeverZeroProperty(t *testing.T) {
	f := func(module string, site uint32) bool {
		return PC(module, site) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorGating(t *testing.T) {
	c := NewCollector(0)
	c.Hit(1) // disabled: ignored
	c.Enable()
	c.Hit(2)
	c.Hit(3)
	c.Disable()
	c.Hit(4) // disabled again
	got := c.Trace()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("trace = %v, want [2 3]", got)
	}
}

func TestCollectorMarkSlice(t *testing.T) {
	c := NewCollector(0)
	c.Enable()
	c.Hit(1)
	m := c.Mark()
	c.Hit(2)
	c.Hit(3)
	got := c.Slice(m)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("slice = %v, want [2 3]", got)
	}
	if c.Slice(-1) != nil || c.Slice(100) != nil {
		t.Fatal("out-of-range slice should be nil")
	}
}

func TestCollectorOverflow(t *testing.T) {
	c := NewCollector(4)
	c.Enable()
	for i := uint32(0); i < 10; i++ {
		c.Hit(i + 1)
	}
	if len(c.Trace()) != 4 {
		t.Fatalf("trace len = %d, want 4", len(c.Trace()))
	}
	if c.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", c.Dropped())
	}
	c.Reset()
	if len(c.Trace()) != 0 || c.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet([]uint32{3, 1, 2, 3, 1})
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if !s.Has(1) || s.Has(4) {
		t.Fatal("membership wrong")
	}
	other := NewSet([]uint32{3, 4, 5})
	if added := s.Merge(other); added != 2 {
		t.Fatalf("merge added %d, want 2", added)
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
}

func TestSetDiffDisjoint(t *testing.T) {
	f := func(a, b []uint32) bool {
		sa, sb := NewSet(a), NewSet(b)
		d := sa.Diff(sb)
		for pc := range d {
			if sa.Has(pc) {
				return false // diff must not contain elements of sa
			}
			if !sb.Has(pc) {
				return false // diff must come from sb
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTraceIdempotent(t *testing.T) {
	f := func(tr []uint32) bool {
		s := NewSet(nil)
		s.MergeTrace(tr)
		n := s.Len()
		if added := s.MergeTrace(tr); added != 0 {
			return false
		}
		return s.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
