// PR 8 portable-checkpoint benchmarks: hot-device cloning against serial
// fleet boot, lineage fan-out against flat prefix re-execution, and the
// per-exec cost of pristine-reset campaign mode.
//
// The standup pair measures what Clone exists to amortize: producing N
// ready fuzzing devices. The boot baseline pays N full standups (boot +
// HAL probe + target extension); the clone path pays one and stamps out
// twins, sharing the probed target and the captured snapshot payloads.
//
// The fan-out pair measures the lineage scheduler's core trade at the
// broker level: to evaluate K*L mutations of a common prefix, the flat
// path re-resets and re-executes prefix+tail every time, while the
// checkpoint path executes the prefix once, exports, and re-imports the
// post-prefix state per lineage — each tail then runs alone.
package perf

import (
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
)

// CloneFleetN is the fleet size both standup benchmarks produce per
// operation; the PR 8 acceptance floor is stated for this N.
const CloneFleetN = 8

// standupOne is one full device standup the way the daemon does it: boot,
// probe the HALs, extend the target with the probed interfaces.
func standupOne(modelID string) (*device.Device, *dsl.Target, error) {
	model, err := device.ModelByID(modelID)
	if err != nil {
		return nil, nil, err
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return nil, nil, err
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return nil, nil, err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return nil, nil, err
	}
	return dev, target, nil
}

// BootStandup8 is the baseline: stand up CloneFleetN ready devices by
// booting and probing each one independently.
func BootStandup8(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < CloneFleetN; n++ {
			dev, target, err := standupOne("A1")
			if err != nil {
				b.Fatal(err)
			}
			_ = adb.NewBroker(dev, target)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "standups/sec")
}

// CloneStandup8 stands up the same fleet by probing once and cloning: one
// full standup, then Clone(N) twins sharing the probed target and the
// snapshot payloads. The single source standup is inside the timed region
// — the comparison is fleet-from-scratch either way.
func CloneStandup8(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, target, err := standupOne("A1")
		if err != nil {
			b.Fatal(err)
		}
		for _, twin := range src.Clone(CloneFleetN) {
			_ = adb.NewBroker(twin, target)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "standups/sec")
}

// Fan-out workload: an 18-call prefix building tcpc and gpu state — the
// length of a typical corpus-admitted program, near the lineage concat cap
// — and a self-contained 2-call tail standing in for a mutated
// continuation. The lineage scheduler's real tails are mutations of the
// prefix; a fixed tail keeps the pair deterministic and measures pure
// scheduling cost.
const (
	fanPrefix = `r0 = open$tcpc(path="/dev/tcpc0")
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x3)
ioctl$TCPC_SET_VOLTAGE(fd=r0, req=0xa103, mv=0x1388)
ioctl$TCPC_SET_MODE(fd=r0, req=0xa102, mode=0x1)
ioctl$TCPC_SET_VOLTAGE(fd=r0, req=0xa103, mv=0x2328)
r5 = open$gpu(path="/dev/gpu0")
r6 = ioctl$GPU_ALLOC(fd=r5, req=0xa601, size=0x1000)
ioctl$GPU_MAP(fd=r5, req=0xa603, handle=r6)
r8 = ioctl$GPU_ALLOC(fd=r5, req=0xa601, size=0x2000)
ioctl$GPU_MAP(fd=r5, req=0xa603, handle=r8)
r10 = ioctl$GPU_ALLOC(fd=r5, req=0xa601, size=0x800)
ioctl$GPU_MAP(fd=r5, req=0xa603, handle=r10)
r12 = ioctl$GPU_ALLOC(fd=r5, req=0xa601, size=0x400)
ioctl$GPU_MAP(fd=r5, req=0xa603, handle=r12)
r14 = ioctl$GPU_ALLOC(fd=r5, req=0xa601, size=0x1800)
ioctl$GPU_MAP(fd=r5, req=0xa603, handle=r14)
r16 = ioctl$GPU_ALLOC(fd=r5, req=0xa601, size=0xc00)
ioctl$GPU_MAP(fd=r5, req=0xa603, handle=r16)
`
	fanTail = `r0 = open$gpu(path="/dev/gpu0")
r1 = ioctl$GPU_ALLOC(fd=r0, req=0xa601, size=0x800)
`
	// fanFull is the prefix plus the tail in one program (result labels
	// renumbered — the DSL requires rN to match the call index).
	fanFull = fanPrefix + `r18 = open$gpu(path="/dev/gpu0")
r19 = ioctl$GPU_ALLOC(fd=r18, req=0xa601, size=0x800)
`
	fanK = 4 // lineages per fan-out
	fanL = 8 // tail executions per lineage
)

func newFanRig(b *testing.B) (*adb.Broker, *dsl.Prog, *dsl.Prog, *dsl.Prog) {
	dev, target, err := standupOne("A1")
	if err != nil {
		b.Fatal(err)
	}
	broker := adb.NewBroker(dev, target)
	prefix, err := dsl.ParseProg(target, fanPrefix)
	if err != nil {
		b.Fatal(err)
	}
	tail, err := dsl.ParseProg(target, fanTail)
	if err != nil {
		b.Fatal(err)
	}
	full, err := dsl.ParseProg(target, fanFull)
	if err != nil {
		b.Fatal(err)
	}
	return broker, prefix, tail, full
}

// FlatPrefixReexec is the no-checkpoint way to evaluate tails against a
// common prefix state: every execution resets to pristine and replays
// prefix+tail in full. One benchmark op is one tail evaluated.
func FlatPrefixReexec(b *testing.B) {
	broker, _, _, full := newFanRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broker.Reset(); err != nil {
			b.Fatal(err)
		}
		if _, err := broker.ExecProg(full); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// LineageFanout evaluates the same tails through the checkpoint path the
// lineage scheduler uses: per fan-out window, rewind to pristine, execute
// the prefix once, export the post-prefix state, then per lineage import
// it and run L bare tails. The window sequence — including the pristine
// re-import that keeps state from accumulating across windows — is
// exactly the engine scheduler's. One benchmark op is one tail evaluated.
func LineageFanout(b *testing.B) {
	broker, prefix, tail, _ := newFanRig(b)
	pristine, err := broker.ExportCheckpoint()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	execs := 0
	for execs < b.N {
		if err := broker.ImportCheckpoint(pristine); err != nil {
			b.Fatal(err)
		}
		if _, err := broker.ExecProg(prefix); err != nil {
			b.Fatal(err)
		}
		post, err := broker.ExportCheckpoint()
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < fanK && execs < b.N; k++ {
			if err := broker.ImportCheckpoint(post); err != nil {
				b.Fatal(err)
			}
			for l := 0; l < fanL && execs < b.N; l++ {
				if _, err := broker.ExecProg(tail); err != nil {
					b.Fatal(err)
				}
				execs++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// newBenchEngineReset is NewBenchEngine with a reset campaign mode.
func newBenchEngineReset(modelID string, seed int64, reset string) (*engine.Engine, error) {
	dev, target, err := standupOne(modelID)
	if err != nil {
		return nil, err
	}
	broker := adb.NewBroker(dev, target)
	return engine.New(broker, relation.New(), crash.NewDedup(),
		engine.Config{Seed: seed, Reset: reset}), nil
}

// NeverResetExec measures steady-state engine iterations with resets only
// on crash fallout — the -reset=never baseline for the pristine pair.
func NeverResetExec(b *testing.B) {
	benchEngineSteps(b, engine.ResetNever)
}

// PristineExec measures the same iterations under -reset=exec: a snapshot
// restore before every execution. The per-exec overhead against
// NeverResetExec is the price of pristine mode, and must stay bounded by
// the light-dirty restore cost (ResetLightDirty) — the reset itself, not
// scheduling, is the expense.
func PristineExec(b *testing.B) {
	benchEngineSteps(b, engine.ResetExec)
}

func benchEngineSteps(b *testing.B, reset string) {
	e, err := newBenchEngineReset("A1", 1, reset)
	if err != nil {
		b.Fatal(err)
	}
	e.Run(200) // warm pools, corpus, and relation graph
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}
