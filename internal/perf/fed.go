package perf

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/coord"
	"droidfuzz/internal/daemon"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
)

// The PR 10 distributed-fleet benchmarks.
//
// FedHost<N> runs one complete coordinated campaign — a real Coordinator, N
// real Hosts over net.Pipe, the full lease/progress/federation protocol —
// with every device execution paying a fixed simulated ADB latency. The
// latency is what makes the scaling claim honest on a small CI machine: a
// fleet exists to multiply *device* time, not host CPU, so the benchmark is
// device-latency-bound by construction and adding a second host with its
// own (simulated) devices should nearly double aggregate execs/sec even on
// one core.
//
// FedUplinkDelta and FedUplinkFull compare the bytes one host ships per
// federation epoch: the cursor-tracked delta batch (new corpus admissions +
// new vertices + delta/varint-coded learn records) against the naive
// alternative of gob-encoding the host's entire accumulated corpus and
// learn journal every epoch. Both push identical synthetic campaign traffic
// through a persistent gob stream, so the ratio in BENCH_PR10.json isolates
// the encoding, not the workload.

const (
	// fedShards is the campaign size shared by every FedHost point; it is
	// divisible by 1, 2 and 4 so each fleet size gets equal static shares,
	// and fine-grained enough that shard-completion tails stay balanced.
	fedShards = 8
	// fedLatency is the simulated per-execution device round-trip, mid-range
	// of real ADB-over-USB latencies (1-10ms). It has to dwarf the host CPU
	// an execution costs (a few hundred µs with early-campaign minimization
	// and triage amortized in) for the scaling measurement to be
	// device-bound the way a physical fleet is.
	fedLatency = 5 * time.Millisecond
	// fedEpochIters is the federation cadence, small enough that even short
	// benchmark campaigns exercise several uplink/downlink exchanges.
	fedEpochIters = 64
	// fedMinIters is the per-shard iteration floor. Campaign standup
	// (attach probing, corpus seeding) is a fixed cost per shard; campaigns
	// shorter than this measure standup instead of steady-state throughput
	// and understate the fleet-scaling factor.
	fedMinIters = 50
)

// latencyExecutor wraps an in-process broker with a fixed per-execution
// sleep, standing in for the ADB transport round trip a physical fleet
// pays. It deliberately does NOT implement adb.BatchExecutor — batching
// would amortize away exactly the cost being modeled — but passes the
// Cloner extension through so shard handoff checkpoints still work.
type latencyExecutor struct {
	adb.Executor
	delay time.Duration
}

// Exec sleeps the simulated round trip, then delegates. The result is the
// wrapped broker's pooled result; ownership transfers to the caller, who
// must Release it when done.
func (l *latencyExecutor) Exec(req adb.ExecRequest) (*adb.ExecResult, error) {
	time.Sleep(l.delay)
	return l.Executor.Exec(req)
}

// ExecProg sleeps the simulated round trip, then delegates. The result is
// the wrapped broker's pooled result; ownership transfers to the caller,
// who must Release it when done.
func (l *latencyExecutor) ExecProg(p *dsl.Prog) (*adb.ExecResult, error) {
	time.Sleep(l.delay)
	return l.Executor.ExecProg(p)
}

func (l *latencyExecutor) ExportCheckpoint() ([]byte, error) {
	if cl, ok := l.Executor.(adb.Cloner); ok {
		return cl.ExportCheckpoint()
	}
	return nil, fmt.Errorf("perf: wrapped executor cannot checkpoint")
}

func (l *latencyExecutor) ImportCheckpoint(blob []byte) error {
	if cl, ok := l.Executor.(adb.Cloner); ok {
		return cl.ImportCheckpoint(blob)
	}
	return fmt.Errorf("perf: wrapped executor cannot checkpoint")
}

// fedAttach builds the HostOptions.Attach hook: the standard probing-pass
// attach (mirroring baseline.NewDroidFuzz) with the broker wrapped in a
// latencyExecutor.
func fedAttach(delay time.Duration) func(d *daemon.Daemon, id, model string, seed int64) error {
	return func(d *daemon.Daemon, id, model string, seed int64) error {
		m, err := device.ModelByID(model)
		if err != nil {
			return err
		}
		dev := device.New(m)
		target, err := dsl.NewTarget(dev.SyscallDescs()...)
		if err != nil {
			return err
		}
		pr, err := probe.Run(dev, probe.Options{})
		if err != nil {
			return err
		}
		target, err = target.Extend(pr.Interfaces...)
		if err != nil {
			return err
		}
		broker := adb.NewBroker(dev, target)
		x := &latencyExecutor{Executor: broker, delay: delay}
		return d.AttachExecutor(id, x, pr.Seeds, engine.Config{Seed: seed})
	}
}

// FedHost1, FedHost2 and FedHost4 run the fixed four-shard campaign on
// fleets of that many hosts; cmd/benchperf -pr 10 derives the scaling
// factor from the 2-vs-1 pair (and records the 4-host point outside
// -short).
func FedHost1(b *testing.B) { fedFleetBench(b, 1) }
func FedHost2(b *testing.B) { fedFleetBench(b, 2) }
func FedHost4(b *testing.B) { fedFleetBench(b, 4) }

func fedFleetBench(b *testing.B, hosts int) {
	iters := (b.N + fedShards - 1) / fedShards
	if iters < fedMinIters {
		iters = fedMinIters
	}
	c, err := coord.New(coord.Campaign{
		Models: []string{"A1"}, Shards: fedShards, Devices: 1,
		Iters: iters, Seed: 11, EpochIters: fedEpochIters,
	}, coord.Options{Hosts: hosts, EvictAfter: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	srv := &coord.Server{C: c}
	fleet := make([]*coord.Host, hosts)
	for i := range fleet {
		cl, err := coord.DialClient("pipe", coord.ClientOptions{
			Dialer: func() (io.ReadWriteCloser, error) {
				hostEnd, coordEnd := net.Pipe()
				go srv.Serve(coordEnd)
				return hostEnd, nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		fleet[i] = coord.NewHost(cl, coord.HostOptions{
			Name:       fmt.Sprintf("bench%d", i),
			LeaseRetry: time.Millisecond,
			Attach:     fedAttach(fedLatency),
		})
	}

	errs := make([]error, hosts)
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for i, h := range fleet {
		wg.Add(1)
		go func(i int, h *coord.Host) {
			defer wg.Done()
			errs[i] = h.Run()
		}(i, h)
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report real device executions, not campaign iterations: one iteration
	// fans out into several executions (mutation candidates, minimization,
	// lineage), every one of which paid the device round-trip.
	var execs float64
	for _, h := range fleet {
		for _, st := range h.Daemon().Stats() {
			execs += float64(st.Execs)
		}
	}
	b.ReportMetric(execs/b.Elapsed().Seconds(), "execs/sec")
}

// Federation-traffic shape per epoch: what one busy host typically has to
// say after fedEpochIters iterations per device — a couple dozen corpus
// admissions, a handful of fresh vertices, and a batch of learn records.
const (
	fedEpochProgs     = 24
	fedEpochVerts     = 2
	fedEpochOps       = 48
	fedCampaignEpochs = 32 // epochs per synthetic campaign before state resets
)

// fedTraffic generates the deterministic synthetic federation traffic both
// uplink benchmarks consume, and accumulates the full-state view the naive
// encoder ships every epoch.
type fedTraffic struct {
	rng      *rand.Rand
	epoch    int
	allProgs []string
	allOps   []relation.LearnOp
}

func newFedTraffic() *fedTraffic {
	return &fedTraffic{rng: rand.New(rand.NewSource(77))}
}

func (t *fedTraffic) reset() {
	t.epoch = 0
	t.allProgs = t.allProgs[:0]
	t.allOps = t.allOps[:0]
}

// next produces one epoch of novelty and folds it into the cumulative
// state. Program texts follow the canonical DSL shape (one call per line,
// resource results feeding later calls) at realistic lengths.
func (t *fedTraffic) next() (progs []string, verts []adb.FedVertex, ops []relation.LearnOp) {
	t.epoch++
	for i := 0; i < fedEpochProgs; i++ {
		n := int(t.rng.Int63()%4) + 2
		text := fmt.Sprintf("r0 = open(\"/dev/dri/card%d\")\n", t.rng.Int63()%4)
		for c := 1; c < n; c++ {
			text += fmt.Sprintf("ioctl(r0, 0x%x, 0x%x)\n", t.rng.Int63()%0xffff, t.rng.Int63())
		}
		progs = append(progs, text)
	}
	for i := 0; i < fedEpochVerts; i++ {
		verts = append(verts, adb.FedVertex{
			Name:   fmt.Sprintf("svc_%d_%d", t.epoch, i),
			Weight: float64(i+1) * 0.05,
		})
	}
	for i := 0; i < fedEpochOps; i++ {
		ops = append(ops, relation.LearnOp{
			A:      fmt.Sprintf("call_%02d", t.rng.Int63()%48),
			B:      fmt.Sprintf("call_%02d", t.rng.Int63()%48),
			Device: "h1/s0.0/A1",
			Seq:    uint64(len(t.allOps) + i + 1),
		})
	}
	t.allProgs = append(t.allProgs, progs...)
	t.allOps = append(t.allOps, ops...)
	return progs, verts, ops
}

// fedFullState is the naive synchronization payload: the host's complete
// corpus and learn journal, re-shipped every epoch.
type fedFullState struct {
	Progs []string
	Verts []adb.FedVertex
	Ops   []relation.LearnOp
}

// FedUplinkDelta measures bytes per federation epoch for the cursor-tracked
// delta batch: only this epoch's novelty, learn records columnar
// delta/varint-coded, the whole batch going through the same persistent gob
// stream the coordinator transport uses.
func FedUplinkDelta(b *testing.B) {
	traffic := newFedTraffic()
	cw := &fedCountWriter{}
	enc := gob.NewEncoder(cw)
	var total float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%fedCampaignEpochs == 0 {
			traffic.reset()
		}
		progs, verts, ops := traffic.next()
		fl, err := coord.EncodeLearns(ops)
		if err != nil {
			b.Fatal(err)
		}
		batch := &adb.FedBatch{Progs: progs, Verts: verts, Learns: fl}
		before := cw.n
		if err := enc.Encode(batch); err != nil {
			b.Fatal(err)
		}
		total += float64(cw.n - before)
	}
	b.StopTimer()
	b.ReportMetric(total/float64(b.N), "uplinkB/epoch")
}

// FedUplinkFull measures the naive comparator: gob-encode the entire
// accumulated corpus and flat learn journal every epoch, the way a
// coordinator without per-host cursors would have to synchronize state.
func FedUplinkFull(b *testing.B) {
	traffic := newFedTraffic()
	cw := &fedCountWriter{}
	enc := gob.NewEncoder(cw)
	var total float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%fedCampaignEpochs == 0 {
			traffic.reset()
		}
		_, verts, _ := traffic.next()
		full := &fedFullState{Progs: traffic.allProgs, Verts: verts, Ops: traffic.allOps}
		before := cw.n
		if err := enc.Encode(full); err != nil {
			b.Fatal(err)
		}
		total += float64(cw.n - before)
	}
	b.StopTimer()
	b.ReportMetric(total/float64(b.N), "uplinkB/epoch")
}

// fedCountWriter counts bytes without retaining them.
type fedCountWriter struct{ n int }

func (w *fedCountWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
