package perf

import (
	"testing"

	"droidfuzz/internal/coord"
)

func BenchmarkFedHost1(b *testing.B) { FedHost1(b) }
func BenchmarkFedHost2(b *testing.B) { FedHost2(b) }
func BenchmarkFedHost4(b *testing.B) { FedHost4(b) }

func BenchmarkFedUplinkDelta(b *testing.B) { FedUplinkDelta(b) }
func BenchmarkFedUplinkFull(b *testing.B)  { FedUplinkFull(b) }

// TestFedTrafficDeterministic pins the synthetic federation traffic: both
// uplink benchmarks must consume the identical epoch stream or the
// delta-vs-full ratio stops being apples-to-apples.
func TestFedTrafficDeterministic(t *testing.T) {
	a, b := newFedTraffic(), newFedTraffic()
	for e := 0; e < 3; e++ {
		pa, va, oa := a.next()
		pb, vb, ob := b.next()
		if len(pa) != fedEpochProgs || len(va) != fedEpochVerts || len(oa) != fedEpochOps {
			t.Fatalf("epoch %d: shape %d/%d/%d", e, len(pa), len(va), len(oa))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("epoch %d prog %d diverged", e, i)
			}
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("epoch %d vert %d diverged", e, i)
			}
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("epoch %d op %d diverged", e, i)
			}
		}
	}
	if len(a.allProgs) != 3*fedEpochProgs || len(a.allOps) != 3*fedEpochOps {
		t.Fatalf("cumulative state %d progs / %d ops", len(a.allProgs), len(a.allOps))
	}
	a.reset()
	if len(a.allProgs) != 0 || len(a.allOps) != 0 || a.epoch != 0 {
		t.Fatal("reset left state behind")
	}
}

// TestFedTrafficLearnsEncodable: every epoch's learn batch must round-trip
// through the columnar codec (the delta benchmark b.Fatal's otherwise, but
// a plain test localizes the failure).
func TestFedTrafficLearnsEncodable(t *testing.T) {
	tr := newFedTraffic()
	for e := 0; e < fedCampaignEpochs; e++ {
		_, _, ops := tr.next()
		fl, err := coord.EncodeLearns(ops)
		if err != nil {
			t.Fatalf("epoch %d: encode: %v", e, err)
		}
		back, err := coord.DecodeLearns(fl)
		if err != nil {
			t.Fatalf("epoch %d: decode: %v", e, err)
		}
		if len(back) != len(ops) {
			t.Fatalf("epoch %d: %d ops round-tripped to %d", e, len(ops), len(back))
		}
		for i := range ops {
			if back[i] != ops[i] {
				t.Fatalf("epoch %d op %d: %+v != %+v", e, i, back[i], ops[i])
			}
		}
	}
}
