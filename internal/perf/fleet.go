package perf

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/relation"
)

// The PR 5 fleet-scaling benchmarks. Each Fleet<N> body runs N engine
// goroutines over ONE shared relation graph, coverage accumulator, and
// crash dedup table — the daemon's parallel-campaign shape — and reports
// aggregate execs/sec. Every iteration performs a whole synthetic engine
// step: snapshot-based base pick and relation walk (generation), a
// collector Reset/Enable/Hit×N/trace cycle (execution), a coverage
// MergeTrace (feedback), plus periodic buffered learns, dedup adds, and a
// status read. FleetLegacy<N> drives the identical step shape through the
// pre-PR-5 implementations in legacyfleet.go, so the speedup in
// BENCH_PR5.json isolates the shared-state rewrite, not workload drift.

const (
	fleetVertices     = 48
	fleetPrelearns    = 160
	fleetWalkLen      = 6
	fleetStopProb     = 0.1
	fleetInsertProbes = 3 // successor queries per step, like gen.insertCall
	fleetLearnEvery   = 32  // one learned pair every N execs
	fleetApplyEvery   = 64  // engine drains its own learn buffer every N execs
	fleetCrashEvery   = 96  // one crash report every N execs
	fleetStatusEvery  = 1024
	fleetChunk        = 256 // iterations claimed per engine per grab
	fleetCollectorCap = 1 << 12
	fleetCrashSites   = 7
)

// fleetNames returns the fixed synthetic vertex set shared by both graph
// variants.
func fleetNames() []string {
	names := make([]string, fleetVertices)
	for i := range names {
		names[i] = fmt.Sprintf("call_%02d", i)
	}
	return names
}

// fleetCrashTitles pre-builds the crash vocabulary so the report path does
// not benchmark fmt.Sprintf.
func fleetCrashTitles() []string {
	titles := make([]string, fleetCrashSites)
	for i := range titles {
		titles[i] = fmt.Sprintf("WARNING in fleet_site_%d", i)
	}
	return titles
}

// fleetLearnSeq is the deterministic pre-learn sequence applied to both
// graph variants so walks have real successor structure.
func fleetLearnSeq(names []string) [][2]string {
	rng := splitmix64(11)
	seq := make([][2]string, 0, fleetPrelearns)
	for len(seq) < fleetPrelearns {
		a := names[rng.next()%uint64(len(names))]
		b := names[rng.next()%uint64(len(names))]
		if a == b {
			continue
		}
		seq = append(seq, [2]string{a, b})
	}
	return seq
}

func newFleetGraph(names []string) *relation.Graph {
	g := relation.New()
	for i, name := range names {
		g.AddVertex(name, 0.05+float64(i%10)*0.01)
	}
	for _, p := range fleetLearnSeq(names) {
		g.Learn(p[0], p[1])
	}
	return g
}

func newFleetLegacyGraph(names []string) *legacyFleetGraph {
	g := newLegacyFleetGraph()
	for i, name := range names {
		g.addVertex(name, 0.05+float64(i%10)*0.01)
	}
	for _, p := range fleetLearnSeq(names) {
		g.learn(p[0], p[1])
	}
	return g
}

// fleetTraces reuses the PR 1 synthetic workload's kcov traces: a few
// hundred PCs per execution with heavy repetition, like real driver loops.
func fleetTraces() [][]uint32 {
	w := newWorkload(7)
	traces := make([][]uint32, len(w.results))
	for i, res := range w.results {
		traces[i] = res.KernelCov
	}
	return traces
}

// Fleet1, Fleet2, Fleet4 and Fleet8 run the optimized shared-state step
// with that many engines; cmd/benchperf -pr 5 records all four so the
// report shows the scaling curve, not just one point.
func Fleet1(b *testing.B) { fleetBench(b, 1) }
func Fleet2(b *testing.B) { fleetBench(b, 2) }
func Fleet4(b *testing.B) { fleetBench(b, 4) }
func Fleet8(b *testing.B) { fleetBench(b, 8) }

// FleetLegacy1..8 are the same fleet shapes on the pre-PR-5 lock-everything
// implementations.
func FleetLegacy1(b *testing.B) { fleetLegacyBench(b, 1) }
func FleetLegacy2(b *testing.B) { fleetLegacyBench(b, 2) }
func FleetLegacy4(b *testing.B) { fleetLegacyBench(b, 4) }
func FleetLegacy8(b *testing.B) { fleetLegacyBench(b, 8) }

func fleetBench(b *testing.B, engines int) {
	names := fleetNames()
	titles := fleetCrashTitles()
	graph := newFleetGraph(names)
	graph.Snapshot() // publish once so the timed region starts in steady state
	cov := kcov.NewBitmap()
	dedup := crash.NewDedup()
	traces := fleetTraces()
	bufs := make([]*relation.LearnBuffer, engines)
	for i := range bufs {
		bufs[i] = relation.NewLearnBuffer(fmt.Sprintf("D%d", i))
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for id := 0; id < engines; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			col := kcov.NewCollector(fleetCollectorCap)
			scratch := make([]uint32, 0, pcsPerExec)
			buf := bufs[id]
			for {
				start := next.Add(fleetChunk) - fleetChunk
				if start >= int64(b.N) {
					return
				}
				end := start + fleetChunk
				if end > int64(b.N) {
					end = int64(b.N)
				}
				for i := start; i < end; i++ {
					// Generation: lock-free snapshot reads.
					snap := graph.Snapshot()
					base := snap.PickBase(rng)
					_ = snap.Walk(rng, base, fleetWalkLen, fleetStopProb)
					// Mutation probes: insertCall-style successor queries.
					for p := 0; p < fleetInsertProbes; p++ {
						_ = snap.Successors(names[int(rng.Int63())%len(names)])
					}
					// Execution: lock-free collector hot path.
					col.Reset()
					col.Enable()
					for _, pc := range traces[int(i)%len(traces)] {
						col.Hit(pc)
					}
					col.Disable()
					scratch = col.AppendTo(scratch[:0], 0)
					// Feedback: atomic bitmap merge.
					cov.MergeTrace(scratch)
					// Learning: buffered, drained in device order.
					if i%fleetLearnEvery == 0 {
						buf.Learn(names[int(rng.Int63())%len(names)],
							names[int(rng.Int63())%len(names)])
					}
					if i%fleetApplyEvery == 0 {
						graph.ApplyBuffered(buf)
					}
					// Crash reporting: striped dedup.
					if i%fleetCrashEvery == 0 {
						dedup.Add(buf.Device(), adb.CrashRecord{
							Kind:  "WARNING",
							Title: titles[int(i)%fleetCrashSites],
						}, nil, uint64(i))
					}
					// Status reader riding along on engine 0, like the
					// daemon's WriteStatus during a campaign.
					if id == 0 && i%fleetStatusEvery == 0 {
						_ = dedup.Len()
						_ = dedup.Records()
						_ = graph.Snapshot().Edges()
						_ = cov.Count()
					}
				}
			}
		}(id)
	}
	wg.Wait()
	b.StopTimer()
	graph.ApplyBuffered(bufs...)
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

func fleetLegacyBench(b *testing.B, engines int) {
	names := fleetNames()
	titles := fleetCrashTitles()
	graph := newFleetLegacyGraph(names)
	cov := newLegacyFleetCoverage()
	dedup := newLegacyFleetDedup()
	traces := fleetTraces()

	var next atomic.Int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for id := 0; id < engines; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			col := newLegacyFleetCollector(fleetCollectorCap)
			scratch := make([]uint32, 0, pcsPerExec)
			device := fmt.Sprintf("D%d", id)
			for {
				start := next.Add(fleetChunk) - fleetChunk
				if start >= int64(b.N) {
					return
				}
				end := start + fleetChunk
				if end > int64(b.N) {
					end = int64(b.N)
				}
				for i := start; i < end; i++ {
					// Generation: every read locks the master mutex; every
					// walk step re-sorts a fresh successor slice.
					base := graph.pickBase(rng)
					_ = graph.walk(rng, base, fleetWalkLen, fleetStopProb)
					for p := 0; p < fleetInsertProbes; p++ {
						_ = graph.successors(names[int(rng.Int63())%len(names)])
					}
					// Execution: one mutex acquisition per cover-point hit.
					col.reset()
					col.enable()
					for _, pc := range traces[int(i)%len(traces)] {
						col.hit(pc)
					}
					col.disable()
					scratch = col.appendTo(scratch[:0])
					// Feedback: mutex-guarded map merge.
					cov.mergeTrace(scratch)
					// Learning: synchronous, straight into the shared lock.
					if i%fleetLearnEvery == 0 {
						graph.learn(names[int(rng.Int63())%len(names)],
							names[int(rng.Int63())%len(names)])
					}
					// Crash reporting: single-mutex dedup.
					if i%fleetCrashEvery == 0 {
						dedup.add(device, titles[int(i)%fleetCrashSites])
					}
					if id == 0 && i%fleetStatusEvery == 0 {
						_ = dedup.length()
						_ = dedup.recordsCopy()
						_ = graph.edgeCount()
						_ = cov.count()
					}
				}
			}
		}(id)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// CollectorHit measures the per-hit cost of the lock-free kcov collector
// in isolation — the device-side hot path every driver cover point lands
// on.
func CollectorHit(b *testing.B) {
	c := kcov.NewCollector(fleetCollectorCap)
	c.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(fleetCollectorCap-1) == 0 {
			c.Reset()
		}
		c.Hit(uint32(i))
	}
}

// CollectorHitLegacy measures the pre-PR-5 mutex-per-hit collector with
// the identical reset cadence.
func CollectorHitLegacy(b *testing.B) {
	c := newLegacyFleetCollector(fleetCollectorCap)
	c.enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(fleetCollectorCap-1) == 0 {
			c.reset()
		}
		c.hit(uint32(i))
	}
}
