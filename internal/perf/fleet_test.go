package perf

import (
	"math/rand"
	"testing"

	"droidfuzz/internal/kcov"
)

func BenchmarkFleet1(b *testing.B)       { Fleet1(b) }
func BenchmarkFleet2(b *testing.B)       { Fleet2(b) }
func BenchmarkFleet4(b *testing.B)       { Fleet4(b) }
func BenchmarkFleet8(b *testing.B)       { Fleet8(b) }
func BenchmarkFleetLegacy1(b *testing.B) { FleetLegacy1(b) }
func BenchmarkFleetLegacy2(b *testing.B) { FleetLegacy2(b) }
func BenchmarkFleetLegacy4(b *testing.B) { FleetLegacy4(b) }
func BenchmarkFleetLegacy8(b *testing.B) { FleetLegacy8(b) }

func BenchmarkCollectorHit(b *testing.B)       { CollectorHit(b) }
func BenchmarkCollectorHitLegacy(b *testing.B) { CollectorHitLegacy(b) }

// TestLegacyFleetGraphMatchesSnapshot pins the legacy reference graph to
// the real one: built from the same vertex/learn sequence, both must draw
// the same bases and walks from paired RNGs. If either side drifts, the
// Fleet-vs-FleetLegacy comparison stops being apples-to-apples.
func TestLegacyFleetGraphMatchesSnapshot(t *testing.T) {
	names := fleetNames()
	g := newFleetGraph(names)
	lg := newFleetLegacyGraph(names)

	if got, want := g.Edges(), lg.edgeCount(); got != want {
		t.Fatalf("edge counts diverge: snapshot graph %d, legacy %d", got, want)
	}
	for _, name := range names {
		succ := g.Snapshot().Successors(name)
		lsucc := lg.successors(name)
		if len(succ) != len(lsucc) {
			t.Fatalf("successors(%s): snapshot %d edges, legacy %d", name, len(succ), len(lsucc))
		}
		for i := range succ {
			if succ[i].To != lsucc[i].to || succ[i].Weight != lsucc[i].weight {
				t.Fatalf("successors(%s)[%d]: snapshot %s/%g, legacy %s/%g",
					name, i, succ[i].To, succ[i].Weight, lsucc[i].to, lsucc[i].weight)
			}
		}
	}

	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		base := g.PickBase(rngA)
		lbase := lg.pickBase(rngB)
		if base != lbase {
			t.Fatalf("draw %d: PickBase %q, legacy %q", i, base, lbase)
		}
		walk := g.Walk(rngA, base, fleetWalkLen, fleetStopProb)
		lwalk := lg.walk(rngB, lbase, fleetWalkLen, fleetStopProb)
		if len(walk) != len(lwalk) {
			t.Fatalf("draw %d: walk lengths %d vs %d", i, len(walk), len(lwalk))
		}
		for j := range walk {
			if walk[j] != lwalk[j] {
				t.Fatalf("draw %d step %d: %q vs %q", i, j, walk[j], lwalk[j])
			}
		}
	}
}

// TestLegacyFleetCoverageMatchesBitmap pins the legacy map coverage to the
// bitmap on the benchmark's own trace workload: identical added counts per
// merge and identical totals.
func TestLegacyFleetCoverageMatchesBitmap(t *testing.T) {
	traces := fleetTraces()
	bm := kcov.NewBitmap()
	legacy := newLegacyFleetCoverage()
	for i, trace := range traces {
		if got, want := bm.MergeTrace(trace), legacy.mergeTrace(trace); got != want {
			t.Fatalf("trace %d: bitmap added %d, legacy added %d", i, got, want)
		}
	}
	if got, want := bm.Count(), legacy.count(); got != want {
		t.Fatalf("totals diverge: bitmap %d, legacy %d", got, want)
	}
}
