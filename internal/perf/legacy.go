package perf

import (
	"fmt"
	"sort"
	"sync"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/feedback"
)

// This file preserves the pre-PR-1 feedback algorithms as a reference for
// the microbenchmarks: map-backed signals rebuilt per execution, a string
// specialization key formatted with fmt.Sprintf on every lookup, and an
// accumulator whose kernel count is recomputed by rescanning the whole set.
// It exists only so BENCH_PR1.json can report an in-binary before/after
// comparison; nothing outside this package uses it.

// legacySignal is the old per-execution map representation.
type legacySignal map[uint64]struct{}

const legacyHALNamespace = uint64(1) << 32

// legacySpecTable is the old string-keyed specialization table with a
// single exclusive mutex.
type legacySpecTable struct {
	mu     sync.Mutex
	ids    map[string]uint32
	nextID uint32
}

func legacySpecKey(nr, path string, arg uint64) string {
	if nr == "ioctl" {
		return fmt.Sprintf("ioctl$%#x", arg)
	}
	return nr + "$" + path
}

func newLegacySpecTable(target *dsl.Target) *legacySpecTable {
	t := &legacySpecTable{ids: make(map[string]uint32), nextID: 1}
	names := make([]string, 0)
	for _, d := range target.SyscallCalls() {
		if d.Syscall != "ioctl" || d.CriticalArg < 0 {
			continue
		}
		req := d.Args[d.CriticalArg].Type.Val
		names = append(names, legacySpecKey("ioctl", "", req))
	}
	sort.Strings(names) // same pre-assignment order as the real table
	for _, k := range names {
		if _, ok := t.ids[k]; !ok {
			t.ids[k] = t.nextID
			t.nextID++
		}
	}
	return t
}

func (t *legacySpecTable) id(ev adb.TraceEvent) uint32 {
	key := legacySpecKey(ev.NR, ev.Path, ev.Arg)
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[key]; ok {
		return id
	}
	id := t.nextID
	t.nextID++
	t.ids[key] = id
	return id
}

// legacyFromExec rebuilds the signal map and ID sequence from scratch for
// every execution, as the seed implementation did.
func legacyFromExec(res *adb.ExecResult, table *legacySpecTable) legacySignal {
	s := make(legacySignal, len(res.KernelCov))
	for _, pc := range res.KernelCov {
		s[uint64(pc)] = struct{}{}
	}
	seq := make([]uint32, len(res.HALTrace))
	for i, ev := range res.HALTrace {
		seq[i] = table.id(ev)
	}
	for _, n := range feedback.NgramOrders {
		legacyAddNgrams(s, seq, n)
	}
	return s
}

func legacyAddNgrams(s legacySignal, seq []uint32, n int) {
	if n <= 0 || len(seq) < n {
		return
	}
	for i := 0; i+n <= len(seq); i++ {
		var h uint64 = 14695981039346656037
		h ^= uint64(n)
		h *= 1099511628211
		for _, id := range seq[i : i+n] {
			h ^= uint64(id)
			h *= 1099511628211
		}
		s[legacyHALNamespace|(h>>32<<16|h&0xffff)] = struct{}{}
	}
}

// legacyAccumulator keeps no incremental counters: every snapshot rescans
// the accumulated set to recount kernel PCs.
type legacyAccumulator struct {
	mu      sync.Mutex
	max     legacySignal
	history []feedback.Point
}

func newLegacyAccumulator() *legacyAccumulator {
	return &legacyAccumulator{max: make(legacySignal)}
}

func (a *legacyAccumulator) merge(s legacySignal) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	added := 0
	for e := range s {
		if _, ok := a.max[e]; !ok {
			a.max[e] = struct{}{}
			added++
		}
	}
	return added
}

// newOf allocates a fresh map for the new subset — the first half of the
// old NewOf-then-Merge double pass.
func (a *legacyAccumulator) newOf(s legacySignal) legacySignal {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := make(legacySignal)
	for e := range s {
		if _, ok := a.max[e]; !ok {
			d[e] = struct{}{}
		}
	}
	return d
}

func (a *legacyAccumulator) snapshot(vtime uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	kernel := 0
	for e := range a.max { // O(n) rescan on every sample
		if e < legacyHALNamespace {
			kernel++
		}
	}
	a.history = append(a.history, feedback.Point{VTime: vtime, Kernel: kernel, Total: len(a.max)})
}
