package perf

import (
	"math/rand"
	"sort"
	"sync"
)

// This file preserves the pre-PR-5 shared-state implementations as the
// legacy reference for the fleet-scaling benchmarks: a relation graph whose
// every read takes the master mutex and re-sorts successor lists, a
// mutex-guarded map coverage accumulator, a single-mutex crash dedup table,
// and a per-Hit mutex kcov collector. Nothing outside this package uses
// them; they exist so BENCH_PR5.json carries an honest in-binary
// before/after comparison.

// legacyFleetEdge mirrors relation.Edge for the legacy graph.
type legacyFleetEdge struct {
	from, to string
	weight   float64
}

type legacyFleetVertex struct {
	name   string
	weight float64
	out    map[string]float64
	in     map[string]float64
}

// legacyFleetGraph is the pre-snapshot relation graph: one mutex guards
// every operation, and the generation-time reads (pickBase, successors,
// walk) lock, allocate and sort on every call — the contention the
// Snapshot rewrite removes.
type legacyFleetGraph struct {
	mu     sync.Mutex
	verts  map[string]*legacyFleetVertex
	names  []string
	edges  int
	learns uint64
}

func newLegacyFleetGraph() *legacyFleetGraph {
	return &legacyFleetGraph{verts: make(map[string]*legacyFleetVertex)}
}

func (g *legacyFleetGraph) addVertex(name string, weight float64) {
	if weight <= 0 {
		weight = 0.01
	}
	if weight >= 1 {
		weight = 0.99
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if v, ok := g.verts[name]; ok {
		v.weight = weight
		return
	}
	g.verts[name] = &legacyFleetVertex{
		name:   name,
		weight: weight,
		out:    make(map[string]float64),
		in:     make(map[string]float64),
	}
	g.names = append(g.names, name)
}

// learn is Eq. (1) under the master lock — identical math to
// relation.Graph.Learn, kept verbatim so the two graphs evolve the same
// weights from the same operation sequence.
func (g *legacyFleetGraph) learn(a, b string) {
	if a == b {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	va, ok := g.verts[a]
	if !ok {
		return
	}
	vb, ok := g.verts[b]
	if !ok {
		return
	}
	if _, existed := va.out[b]; !existed {
		g.edges++
	}
	siblings := make([]string, 0, len(vb.in))
	for x := range vb.in {
		if x != a {
			siblings = append(siblings, x)
		}
	}
	sort.Strings(siblings)
	var sum float64
	for _, x := range siblings {
		half := vb.in[x] / 2
		vb.in[x] = half
		g.verts[x].out[b] = half
		sum += half
	}
	w := 1 - sum
	if w < 0 {
		w = 0
	}
	va.out[b] = w
	vb.in[a] = w
	g.learns++
}

// pickBase is the pre-snapshot draw: the whole weight scan happens under
// the master lock.
func (g *legacyFleetGraph) pickBase(rng *rand.Rand) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var total float64
	for _, name := range g.names {
		total += g.verts[name].weight
	}
	if total == 0 {
		return ""
	}
	x := rng.Float64() * total
	for _, name := range g.names {
		x -= g.verts[name].weight
		if x <= 0 {
			return name
		}
	}
	return g.names[len(g.names)-1]
}

// successors locks, allocates a fresh slice and sorts it on every call —
// the per-step cost Walk used to pay before snapshots.
func (g *legacyFleetGraph) successors(name string) []legacyFleetEdge {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.verts[name]
	if !ok {
		return nil
	}
	out := make([]legacyFleetEdge, 0, len(v.out))
	for b, w := range v.out {
		out = append(out, legacyFleetEdge{from: name, to: b, weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].weight != out[j].weight {
			return out[i].weight > out[j].weight
		}
		return out[i].to < out[j].to
	})
	return out
}

// walk replays the historical draw sequence (stop draw first every step,
// selection draw only with positive successor mass) but pays the legacy
// lock+alloc+sort successors call on every step.
func (g *legacyFleetGraph) walk(rng *rand.Rand, from string, maxLen int, stopProb float64) []string {
	var path []string
	cur := from
	for len(path) < maxLen {
		if rng.Float64() < stopProb {
			break
		}
		succ := g.successors(cur)
		if len(succ) == 0 {
			break
		}
		var total float64
		for _, e := range succ {
			total += e.weight
		}
		if total <= 0 {
			break
		}
		x := rng.Float64() * total
		next := succ[len(succ)-1].to
		for _, e := range succ {
			x -= e.weight
			if x <= 0 {
				next = e.to
				break
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

func (g *legacyFleetGraph) edgeCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.edges
}

// legacyFleetCoverage is the pre-bitmap accumulator: one mutex around a
// map[uint32]struct{}, exactly what feedback.Accumulator used for kernel
// PCs before the two-level bitmap.
type legacyFleetCoverage struct {
	mu  sync.Mutex
	pcs map[uint32]struct{}
}

func newLegacyFleetCoverage() *legacyFleetCoverage {
	return &legacyFleetCoverage{pcs: make(map[uint32]struct{})}
}

func (c *legacyFleetCoverage) mergeTrace(trace []uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := 0
	for _, pc := range trace {
		if _, ok := c.pcs[pc]; !ok {
			c.pcs[pc] = struct{}{}
			added++
		}
	}
	return added
}

func (c *legacyFleetCoverage) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pcs)
}

// legacyFleetRecord / legacyFleetDedup are the pre-striping crash table:
// a single mutex serializes every Add against every Records scan.
type legacyFleetRecord struct {
	title  string
	device string
	count  int
}

type legacyFleetDedup struct {
	mu      sync.Mutex
	records map[string]*legacyFleetRecord
	order   []string
}

func newLegacyFleetDedup() *legacyFleetDedup {
	return &legacyFleetDedup{records: make(map[string]*legacyFleetRecord)}
}

func (d *legacyFleetDedup) add(device, title string) *legacyFleetRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.records[title]; ok {
		r.count++
		return r
	}
	r := &legacyFleetRecord{title: title, device: device, count: 1}
	d.records[title] = r
	d.order = append(d.order, title)
	return r
}

func (d *legacyFleetDedup) length() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.records)
}

// recordsCopy holds the one mutex for the whole scan, stalling every
// concurrent add — the status-path behavior the striped Dedup fixes.
func (d *legacyFleetDedup) recordsCopy() []legacyFleetRecord {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]legacyFleetRecord, 0, len(d.order))
	for _, title := range d.order {
		out = append(out, *d.records[title])
	}
	return out
}

// legacyFleetCollector is the pre-PR-5 kcov collector: every Hit takes a
// mutex to append into the trace buffer.
type legacyFleetCollector struct {
	mu      sync.Mutex
	enabled bool
	max     int
	buf     []uint32
	dropped uint64
}

func newLegacyFleetCollector(max int) *legacyFleetCollector {
	return &legacyFleetCollector{max: max}
}

func (c *legacyFleetCollector) enable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = true
}

func (c *legacyFleetCollector) disable() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = false
}

func (c *legacyFleetCollector) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = c.buf[:0]
	c.dropped = 0
}

func (c *legacyFleetCollector) hit(pc uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return
	}
	if len(c.buf) >= c.max {
		c.dropped++
		return
	}
	c.buf = append(c.buf, pc)
}

func (c *legacyFleetCollector) appendTo(dst []uint32) []uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append(dst, c.buf...)
}
