// PR 7 runtime-parameter benchmarks: what the knob dimension buys a
// campaign. The pair runs the same param-extended target through the full
// system and through the DROIDFUZZ-D ioctl-only gate; the difference in
// accumulated kernel coverage — and in particular the count of sysfs store
// sites, which no ioctl sequence can reach — is the coverage the runtime
// parameters add. Both points also carry execs/sec, so the report shows the
// dimension's throughput cost alongside its coverage gain.
package perf

import (
	"testing"

	"droidfuzz/internal/baseline"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/relation"
)

// paramCampaignIters is the per-campaign iteration budget: long enough for
// probe seeds plus mutation to land knob writes across several families,
// short enough that one campaign fits a sub-second benchtime.
const paramCampaignIters = 600

// paramStorePCs precomputes the kcov PCs of every sysfs store cover window
// on the device (knob base site + 4 sites: three value buckets and the
// malformed-write reject).
func paramStorePCs(dev *device.Device) map[uint32]bool {
	pcs := make(map[uint32]bool)
	for _, kn := range dev.ParamSurface() {
		for _, sp := range kn.Specs() {
			if sp.Site == 0 {
				continue
			}
			for s := sp.Site; s < sp.Site+4; s++ {
				pcs[kcov.PC(kn.Family(), s)] = true
			}
		}
	}
	return pcs
}

func paramCampaign(b *testing.B, ioctlOnly bool) {
	model, err := device.ModelByID("A1")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var execs, gated, cover float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := device.New(model)
		cfg := engine.Config{Seed: int64(1 + i), Params: true}
		var eng *engine.Engine
		if ioctlOnly {
			eng, err = baseline.NewDroidFuzzD(dev, cfg)
		} else {
			eng, err = baseline.NewDroidFuzz(dev, relation.New(), crash.NewDedup(), cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		eng.Run(paramCampaignIters)
		stores := paramStorePCs(dev)
		for _, pc := range eng.Accumulator().KernelPCs() {
			if stores[pc] {
				gated++
			}
		}
		cover += float64(eng.Stats().KernelCov)
		execs += float64(eng.Execs())
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(gated/n, "gatedPCs/run")
	b.ReportMetric(cover/n, "cover/run")
	b.ReportMetric(execs/b.Elapsed().Seconds(), "execs/sec")
}

// ParamCampaign benchmarks a param-enabled A1 campaign through the full
// system: knob writes in the mutation surface, relation-learned
// param↔ioctl couplings, snapshot-restored knob state.
func ParamCampaign(b *testing.B) { paramCampaign(b, false) }

// ParamCampaignIoctlOnly benchmarks the same param-extended target under
// the DROIDFUZZ-D gate: the kernel blocks the write leg of every param
// call, so gatedPCs/run must stay 0 — the ablation floor the full system
// is compared against.
func ParamCampaignIoctlOnly(b *testing.B) { paramCampaign(b, true) }
