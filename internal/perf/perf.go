// Package perf hosts the PR 1 hot-path microbenchmarks. The benchmark
// bodies are exported so both `go test -bench` (via perf_test.go) and
// cmd/benchperf (which runs them through testing.Benchmark to emit
// BENCH_PR1.json) drive the exact same code.
//
// Each optimized path is benchmarked against an in-tree legacy reference
// implementation (legacy.go) that preserves the pre-rewrite algorithms:
// map-backed signals, fmt.Sprintf string-keyed specialization lookups, and
// O(n)-rescan accumulator stats. That keeps the before/after comparison
// honest inside one binary instead of relying on stale recorded numbers.
package perf

import (
	"fmt"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/crash"
	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/engine"
	"droidfuzz/internal/feedback"
	"droidfuzz/internal/probe"
	"droidfuzz/internal/relation"
)

// splitmix64 is the deterministic generator for synthetic workloads; the
// benchmarks must not depend on run-to-run entropy.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// workload is a fixed set of synthetic execution results shaped like the
// simulator's real output: a few hundred kernel PCs with heavy repetition
// (loops revisit the same driver blocks) and a few dozen HAL-origin trace
// events drawn from a small ioctl vocabulary.
type workload struct {
	results []*adb.ExecResult
	events  []adb.TraceEvent
}

const (
	workloadVariants = 8
	pcsPerExec       = 220
	distinctPCs      = 96
	eventsPerExec    = 28
	distinctIoctls   = 24
)

func newWorkload(seed uint64) *workload {
	rng := splitmix64(seed)
	w := &workload{}
	for v := 0; v < workloadVariants; v++ {
		res := &adb.ExecResult{}
		for i := 0; i < pcsPerExec; i++ {
			// PCs cluster in a small distinct set, like kcov traces do.
			res.KernelCov = append(res.KernelCov,
				0xc0de0000+uint32(rng.next()%distinctPCs)*0x40)
		}
		for i := 0; i < eventsPerExec; i++ {
			var ev adb.TraceEvent
			switch rng.next() % 8 {
			case 0:
				ev = adb.TraceEvent{NR: "read", Path: "/dev/wlan0"}
			case 1:
				ev = adb.TraceEvent{NR: "write", Path: "/dev/gpu0"}
			default:
				ev = adb.TraceEvent{NR: "ioctl", Path: "/dev/gpu0",
					Arg: 0xa000 + rng.next()%distinctIoctls}
			}
			res.HALTrace = append(res.HALTrace, ev)
			w.events = append(w.events, ev)
		}
		w.results = append(w.results, res)
	}
	return w
}

// SignalPipeline measures the optimized per-execution feedback path in
// steady state: pooled FromExec, fused MergeNew under one lock, O(1)
// snapshot cadence. After warm-up the loop is allocation-free.
func SignalPipeline(b *testing.B) {
	w := newWorkload(1)
	table := feedback.NewSpecTable(mustTarget())
	acc := feedback.NewAccumulator()
	for _, res := range w.results { // warm to steady state
		sig := feedback.FromExec(res, table)
		acc.Merge(sig)
		sig.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := w.results[i%len(w.results)]
		sig := feedback.FromExec(res, table)
		fresh := acc.MergeNew(sig)
		_ = fresh.KernelLen()
		fresh.Release()
		sig.Release()
		if i%25 == 0 {
			acc.Snapshot(uint64(i))
		}
	}
}

// SignalPipelineLegacy measures the same logical pipeline on the
// pre-rewrite algorithms: map-backed signal construction, separate
// NewOf-then-Merge passes, and snapshots that rescan the accumulated set.
func SignalPipelineLegacy(b *testing.B) {
	w := newWorkload(1)
	table := newLegacySpecTable(mustTarget())
	acc := newLegacyAccumulator()
	for _, res := range w.results {
		acc.merge(legacyFromExec(res, table))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := w.results[i%len(w.results)]
		sig := legacyFromExec(res, table)
		fresh := acc.newOf(sig)
		acc.merge(sig)
		var kernel int
		for e := range fresh {
			if e < 1<<32 {
				kernel++
			}
		}
		_ = kernel
		if i%25 == 0 {
			acc.snapshot(uint64(i))
		}
	}
}

// SpecTableID measures the steady-state specialized-ID lookup: packed
// integer keys under a read lock, zero allocations.
func SpecTableID(b *testing.B) {
	w := newWorkload(2)
	table := feedback.NewSpecTable(mustTarget())
	for _, ev := range w.events {
		table.ID(ev) // assign any runtime-discovered IDs up front
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.ID(w.events[i%len(w.events)])
	}
}

// SpecTableIDLegacy measures the pre-rewrite lookup: a fmt.Sprintf-built
// string key per event under an exclusive mutex.
func SpecTableIDLegacy(b *testing.B) {
	w := newWorkload(2)
	table := newLegacySpecTable(mustTarget())
	for _, ev := range w.events {
		table.id(ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.id(w.events[i%len(w.events)])
	}
}

// EngineStep measures whole fuzzing iterations (generate/mutate, execute
// on the device simulator, feedback, corpus upkeep) on model A1 and
// reports throughput as execs/sec. This is the end-to-end number the
// pooled feedback path and result reuse exist to move.
func EngineStep(b *testing.B) {
	e, err := NewBenchEngine("A1", 1)
	if err != nil {
		b.Fatal(err)
	}
	e.Run(200) // warm pools, corpus, and relation graph
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// NewBenchEngine boots a device model and wires a standalone engine the
// same way the daemon does; shared by the benchmarks and cmd/benchperf.
func NewBenchEngine(modelID string, seed int64) (*engine.Engine, error) {
	model, err := device.ModelByID(modelID)
	if err != nil {
		return nil, err
	}
	dev := device.New(model)
	target, err := dsl.NewTarget(dev.SyscallDescs()...)
	if err != nil {
		return nil, err
	}
	pr, err := probe.Run(dev, probe.Options{})
	if err != nil {
		return nil, err
	}
	target, err = target.Extend(pr.Interfaces...)
	if err != nil {
		return nil, err
	}
	broker := adb.NewBroker(dev, target)
	return engine.New(broker, relation.New(), crash.NewDedup(), engine.Config{Seed: seed}), nil
}

// mustTarget builds the A1 syscall target once per benchmark.
func mustTarget() *dsl.Target {
	model, err := device.ModelByID("A1")
	if err != nil {
		panic(fmt.Sprintf("perf: model A1: %v", err))
	}
	target, err := dsl.NewTarget(device.New(model).SyscallDescs()...)
	if err != nil {
		panic(fmt.Sprintf("perf: target: %v", err))
	}
	return target
}
