package perf

import (
	"testing"

	"droidfuzz/internal/feedback"
)

// The ISSUE-named benchmarks. Run with:
//
//	go test -bench . -benchmem ./internal/perf/
//
// cmd/benchperf runs the same bodies and writes BENCH_PR1.json.

func BenchmarkSignalPipeline(b *testing.B)       { SignalPipeline(b) }
func BenchmarkSignalPipelineLegacy(b *testing.B) { SignalPipelineLegacy(b) }
func BenchmarkSpecTableID(b *testing.B)          { SpecTableID(b) }
func BenchmarkSpecTableIDLegacy(b *testing.B)    { SpecTableIDLegacy(b) }
func BenchmarkEngineStep(b *testing.B)           { EngineStep(b) }

// TestLegacyAndPooledSignalsAgree pins the legacy reference to the real
// implementation: if either drifts, the benchmark comparison is
// meaningless. Both paths must produce the same element set for the same
// execution result.
func TestLegacyAndPooledSignalsAgree(t *testing.T) {
	w := newWorkload(3)
	target := mustTarget()
	table := feedback.NewSpecTable(target)
	legacy := newLegacySpecTable(target)
	for _, res := range w.results {
		sig := feedback.FromExec(res, table)
		leg := legacyFromExec(res, legacy)
		if sig.Len() != len(leg) {
			t.Fatalf("element counts differ: pooled %d, legacy %d", sig.Len(), len(leg))
		}
		for _, e := range sig.Elems() {
			if _, ok := leg[e]; !ok {
				t.Fatalf("pooled element %#x missing from legacy signal", e)
			}
		}
		sig.Release()
	}
}

func BenchmarkTransportLockstep(b *testing.B)      { TransportLockstep(b) }
func BenchmarkTransportWindowedBatch(b *testing.B) { TransportWindowedBatch(b) }

func BenchmarkResetReboot(b *testing.B)     { ResetReboot(b) }
func BenchmarkResetLightDirty(b *testing.B) { ResetLightDirty(b) }
func BenchmarkResetHeavyDirty(b *testing.B) { ResetHeavyDirty(b) }

func BenchmarkParamCampaign(b *testing.B)          { ParamCampaign(b) }
func BenchmarkParamCampaignIoctlOnly(b *testing.B) { ParamCampaignIoctlOnly(b) }

func BenchmarkBootStandup8(b *testing.B)     { BootStandup8(b) }
func BenchmarkCloneStandup8(b *testing.B)    { CloneStandup8(b) }
func BenchmarkFlatPrefixReexec(b *testing.B) { FlatPrefixReexec(b) }
func BenchmarkLineageFanout(b *testing.B)    { LineageFanout(b) }
func BenchmarkNeverResetExec(b *testing.B)   { NeverResetExec(b) }
func BenchmarkPristineExec(b *testing.B)     { PristineExec(b) }
