// PR 6 device-reset benchmarks: copy-on-write snapshot restore against the
// full reboot it replaces. The pair of dirt profiles brackets the real
// campaign behavior — a typical crash touches one driver (light), a worst
// case poisons every driver and kills a HAL process (heavy) — and the
// baseline reboots under the light profile, the cheapest work a reboot
// ever replaces, so both speedup factors are conservative.
package perf

import (
	"testing"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/device"
	"droidfuzz/internal/hal"
	"droidfuzz/internal/vkernel"
)

// resetRig is one booted model A1 device plus everything the dirt profiles
// need resolved up front: the Graphics HAL process and its transaction
// codes (reflection is done once — codes are stable across restores).
type resetRig struct {
	dev          *device.Device
	graphics     *hal.Process
	createLayer  uint32
	destroyLayer uint32
	present      uint32
}

func newResetRig(b *testing.B) *resetRig {
	model, err := device.ModelByID("A1")
	if err != nil {
		b.Fatal(err)
	}
	r := &resetRig{dev: device.New(model)}
	for _, p := range r.dev.Procs {
		if p.Descriptor() == hal.GraphicsDescriptor {
			r.graphics = p
		}
	}
	if r.graphics == nil {
		b.Fatal("no Graphics HAL on A1")
	}
	out := binder.NewParcel()
	if st := r.graphics.Transact(binder.InterfaceTransaction, binder.NewParcel(), out); st != binder.StatusOK {
		b.Fatalf("reflect: %v", st)
	}
	methods, err := binder.UnmarshalMethods(out)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range methods {
		switch m.Name {
		case "createLayer":
			r.createLayer = m.Code
		case "destroyLayer":
			r.destroyLayer = m.Code
		case "presentDisplay":
			r.present = m.Code
		}
	}
	if r.createLayer == 0 || r.destroyLayer == 0 || r.present == 0 {
		b.Fatal("Graphics composer methods not found")
	}
	return r
}

// dirtyOne touches exactly one driver: open, one ioctl, close on the GPU
// node. The kernel and the gpu driver advance their dirty generations;
// every other subsystem stays at its checkpoint.
func (r *resetRig) dirtyOne() {
	k := r.dev.K
	fd, err := k.Open(device.NativePID, vkernel.OriginNative, "/dev/gpu0", 0)
	if err != nil {
		panic(err)
	}
	k.Ioctl(device.NativePID, vkernel.OriginNative, fd, 0, nil) // errno is fine; dirt is the point
	k.Close(device.NativePID, vkernel.OriginNative, fd)
}

// dirtyAll touches every driver (open + ioctl + close on each device node)
// and then runs the A1 Graphics composer use-after-destroy recipe, leaving
// the HAL process dead with a pending crash — the heaviest fallout a
// single execution produces.
func (r *resetRig) dirtyAll() {
	k := r.dev.K
	for _, path := range k.DevicePaths() {
		fd, err := k.Open(device.NativePID, vkernel.OriginNative, path, 0)
		if err != nil {
			panic(err)
		}
		k.Ioctl(device.NativePID, vkernel.OriginNative, fd, 0, nil)
		k.Close(device.NativePID, vkernel.OriginNative, fd)
	}
	in := binder.NewParcel()
	in.WriteUint64(64)
	in.WriteUint64(64)
	in.WriteUint64(1)
	out := binder.NewParcel()
	if st := r.graphics.Transact(r.createLayer, in, out); st != binder.StatusOK {
		panic(st)
	}
	layer, _ := out.ReadUint64()
	in = binder.NewParcel()
	in.WriteUint64(layer)
	if st := r.graphics.Transact(r.destroyLayer, in, binder.NewParcel()); st != binder.StatusOK {
		panic(st)
	}
	// The dangling presentation-list entry segfaults the composer.
	if st := r.graphics.Transact(r.present, binder.NewParcel(), binder.NewParcel()); st != binder.StatusDeadObject {
		panic(st)
	}
}

// ResetReboot is the baseline: light dirt, then a full reboot. Reboot cost
// is dirt-independent (it reconstructs the whole device tree), so the
// light profile gives the reboot its best case.
func ResetReboot(b *testing.B) {
	r := newResetRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.dirtyOne()
		r.dev.Reboot()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resets/sec")
}

// ResetLightDirty restores after touching one driver: the snapshot path's
// common case, where almost every subsystem is skipped by generation
// check.
func ResetLightDirty(b *testing.B) {
	r := newResetRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.dirtyOne()
		if !r.dev.Restore() {
			b.Fatal("restore fell back")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resets/sec")
}

// ResetHeavyDirty restores after the worst single-execution fallout: every
// driver dirtied plus a dead Graphics HAL. Nothing is skipped; this bounds
// the restore path from above.
func ResetHeavyDirty(b *testing.B) {
	r := newResetRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.dirtyAll()
		if !r.dev.Restore() {
			b.Fatal("restore fell back")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "resets/sec")
}
