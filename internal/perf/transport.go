// PR 3 transport benchmarks: the v1 lock-step request/reply protocol
// (one synchronous RPC per execution, full gob-encoded results) against the
// wire protocol v2 fast path (windowed in-flight frames, batched execution,
// delta-coded summary uplink). Both run over net.Pipe against the same stub
// device, so the measured gap is pure protocol overhead: per-RPC handoffs
// and uplink bytes, not device speed.
package perf

import (
	"io"
	"net"
	"sync/atomic"
	"testing"

	"droidfuzz/internal/adb"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/feedback"
)

// countingRW wraps the device side of a transport stream and counts the
// bytes the device writes — the uplink traffic (results and coverage
// traces) the v2 summary encoding exists to shrink.
type countingRW struct {
	rw io.ReadWriter
	n  atomic.Int64
}

func (c *countingRW) Read(p []byte) (int, error) { return c.rw.Read(p) }

func (c *countingRW) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingRW) Close() error {
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// stubDevice is an Executor that replays the canned workload results
// instead of simulating a device: execution is near-free, so the benchmark
// isolates what the transport itself costs per execution.
type stubDevice struct {
	target  *dsl.Target
	results []*adb.ExecResult
	calls   atomic.Uint64
}

// newStubDevice derives per-call coverage attribution from the workload's
// kernel traces, matching the shape real broker results have (the full
// trace plus per-call slices of it).
func newStubDevice(seed uint64) *stubDevice {
	w := newWorkload(seed)
	d := &stubDevice{target: mustTarget()}
	for _, src := range w.results {
		res := &adb.ExecResult{
			KernelCov: src.KernelCov,
			HALTrace:  src.HALTrace,
		}
		third := len(src.KernelCov) / 3
		for i := 0; i < 3; i++ {
			res.Calls = append(res.Calls, adb.CallResult{
				Executed: true, Errno: "OK", Ret: uint64(i),
				Cover: src.KernelCov[i*third : (i+1)*third],
			})
		}
		d.results = append(d.results, res)
	}
	return d
}

// Exec serves a deep copy of the next canned result. The copy is required:
// the transport server releases results into the shared pool after
// encoding, and a pooled result aliasing the canned slices would corrupt
// the workload on reuse.
func (d *stubDevice) Exec(req adb.ExecRequest) (*adb.ExecResult, error) {
	src := d.results[d.calls.Add(1)%uint64(len(d.results))]
	res := &adb.ExecResult{
		KernelCov: append([]uint32(nil), src.KernelCov...),
		HALTrace:  append([]adb.TraceEvent(nil), src.HALTrace...),
	}
	for _, c := range src.Calls {
		res.Calls = append(res.Calls, adb.CallResult{
			Executed: c.Executed, Errno: c.Errno, Ret: c.Ret,
			Cover: append([]uint32(nil), c.Cover...),
		})
	}
	return res, nil
}

// ExecProg serves the next canned result; like Exec, the caller owns the
// result and may Release it into the shared pool.
func (d *stubDevice) ExecProg(p *dsl.Prog) (*adb.ExecResult, error) {
	return d.Exec(adb.ExecRequest{})
}

func (d *stubDevice) Reboot() error           { return nil }
func (d *stubDevice) Reset() (bool, error)    { return true, nil }
func (d *stubDevice) Ping() error             { return nil }
func (d *stubDevice) Info() (adb.Info, error) { return adb.Info{ModelID: "bench"}, nil }
func (d *stubDevice) Target() *dsl.Target     { return d.target }

// transportRig is one host/device transport pair over net.Pipe with uplink
// byte accounting on the device side.
type transportRig struct {
	conn *adb.Conn
	up   *countingRW
}

// newTransportRig wires a stub device behind a transport server. With
// filtered set, the server builds a real feedback uplink filter per
// connection, enabling summary-mode elision exactly as droidbrokerd does.
func newTransportRig(b *testing.B, window, frame int, filtered bool) *transportRig {
	b.Helper()
	dev := newStubDevice(3)
	host, devEnd := net.Pipe()
	up := &countingRW{rw: devEnd}
	srv := &adb.Server{X: dev}
	if filtered {
		srv.NewFilter = func() adb.UplinkFilter { return feedback.NewUplinkFilter(dev.target) }
	}
	go srv.Serve(up)
	conn := adb.Dial(host)
	conn.SetWindow(window)
	conn.SetBatchFrame(frame)
	b.Cleanup(func() { conn.Close(); devEnd.Close() })
	return &transportRig{conn: conn, up: up}
}

// warmExecs is how many executions each benchmark runs before the timer
// starts: enough for every workload variant to cross the wire several
// times, so the summary filter's view (and the result pool) is in steady
// state when measurement begins.
const warmExecs = 64

// TransportLockstep measures the v1 protocol shape: one synchronous Exec
// round trip per execution, the full result gob-encoded on the uplink.
// Reported as round trips per second and uplink bytes per execution.
func TransportLockstep(b *testing.B) {
	rig := newTransportRig(b, 1, 1, false)
	for i := 0; i < warmExecs; i++ {
		res, err := rig.conn.Exec(adb.ExecRequest{ProgText: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
	rig.up.n.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rig.conn.Exec(adb.ExecRequest{ProgText: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/sec")
	b.ReportMetric(float64(rig.up.n.Load())/float64(b.N), "uplinkB/exec")
}

// TransportWindowedBatch measures the v2 fast path: batched frames through
// an in-flight window with the delta-coded, interesting-only summary
// uplink. The workload repeats a fixed variant set, so past warm-up nearly
// every execution is elided — the steady state of a fuzzing campaign, where
// new signal is rare.
func TransportWindowedBatch(b *testing.B) {
	rig := newTransportRig(b, adb.DefaultWindow, adb.DefaultBatchFrame, true)
	progs := make([]string, 256)
	for i := range progs {
		progs[i] = "bench"
	}
	flush := func(n int) {
		results, err := rig.conn.ExecBatch(adb.ExecBatchRequest{Progs: progs[:n], Summary: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range results {
			if res == nil {
				b.Fatal("batched execution dropped")
			}
			res.Release()
		}
	}
	flush(warmExecs)
	rig.up.n.Store(0)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := len(progs)
		if rest := b.N - done; rest < n {
			n = rest
		}
		flush(n)
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/sec")
	b.ReportMetric(float64(rig.up.n.Load())/float64(b.N), "uplinkB/exec")
}
