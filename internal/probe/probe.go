// Package probe implements DroidFuzz's pre-testing HAL driver probing pass
// (paper §IV-B, Fig. 3). Release firmware ships no HAL interface
// descriptions, so the pass reconstructs them by poking the running system:
//
//  1. an lshal-style enumeration of registered HAL services through
//     ServiceManager;
//  2. a Poke trial of every reflected interface, marshaling minimal
//     parameters and invoking the method, while
//  3. eBPF hooks on Binder-adjacent syscalls record the kernel interaction
//     each interface produces; and
//  4. normalized-occurrence weighting: the framework's high-level APIs are
//     exercised and the number of times each interface is triggered becomes
//     its base-invocation weight.
//
// The output is a set of DSL call descriptions for the HAL boundary that
// the generator treats exactly like syscall descriptions.
package probe

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"droidfuzz/internal/binder"
	"droidfuzz/internal/device"
	"droidfuzz/internal/drivers"
	"droidfuzz/internal/dsl"
	"droidfuzz/internal/ebpf"
	"droidfuzz/internal/vkernel"
)

// ServiceReport summarizes probing one HAL service.
type ServiceReport struct {
	Descriptor string
	Methods    int
	// TrialEvents is the number of HAL-origin syscalls the Poke trials of
	// this service produced (the eBPF-observed kernel interaction).
	TrialEvents int
}

// Result is the probing pass output.
type Result struct {
	// Interfaces are the discovered HAL interfaces as DSL descriptions,
	// weights assigned.
	Interfaces []*dsl.CallDesc
	// Params are the discovered writable runtime parameters (sysfs module
	// knobs) as DSL descriptions, weights assigned. Empty unless
	// Options.Params is set.
	Params []*dsl.CallDesc
	// Services summarizes per-service findings, sorted by descriptor.
	Services []ServiceReport
	// Occurrences maps interface DSL names to raw trigger counts from the
	// framework-API weighting runs.
	Occurrences map[string]int
	// Seeds are the observed framework workloads distilled into DSL
	// programs — one per high-level operation, with the real marshaled
	// argument values and resource flow reconstructed. They bootstrap the
	// fuzzer's corpus with realistic interaction sequences.
	Seeds []*dsl.Prog
}

// Options tune the probing pass.
type Options struct {
	// WeightRounds is how many times each framework operation is run for
	// occurrence counting (default 3).
	WeightRounds int
	// MinWeight and MaxWeight bound the normalized interface weights
	// (defaults 0.10 and 0.90).
	MinWeight, MaxWeight float64
	// Params enables discovery of the writable runtime-parameter surface
	// (sysfs module knobs) alongside the HAL interfaces.
	Params bool
}

func (o *Options) defaults() {
	if o.WeightRounds <= 0 {
		o.WeightRounds = 3
	}
	if o.MinWeight <= 0 {
		o.MinWeight = 0.10
	}
	if o.MaxWeight <= 0 || o.MaxWeight >= 1 {
		o.MaxWeight = 0.90
	}
}

// shortName compresses a Binder descriptor to the DSL service prefix:
// "android.hardware.graphics.composer" -> "graphics.composer".
func shortName(descriptor string) string {
	return strings.TrimPrefix(descriptor, "android.hardware.")
}

// DSLName returns the DSL call name for a probed interface.
func DSLName(descriptor, method string) string {
	return "hal$" + shortName(descriptor) + "." + method
}

// Run executes the probing pass against a booted device.
func Run(dev *device.Device, opts Options) (*Result, error) {
	opts.defaults()
	res := &Result{Occurrences: make(map[string]int)}

	// Step 1: enumerate services (lshal through ServiceManager).
	descriptors := dev.SM.List()

	// Step 2+3: reflect and poke each service under an eBPF probe.
	for _, desc := range descriptors {
		report, ifaces, err := pokeService(dev, desc)
		if err != nil {
			return nil, err
		}
		res.Services = append(res.Services, report)
		res.Interfaces = append(res.Interfaces, ifaces...)
	}
	sort.Slice(res.Services, func(i, j int) bool {
		return res.Services[i].Descriptor < res.Services[j].Descriptor
	})

	// The Poke trials may have tripped buggy paths; restore a clean
	// device before weighting (the pass is pre-testing: a rebooted,
	// healthy device is its postcondition).
	if !dev.Healthy() {
		dev.Reboot()
	}

	// Step 4: occurrence weighting through high-level framework APIs. The
	// same observed IPC traffic also yields argument-value hints — the
	// actual parameters real clients marshal — which generation later
	// replays with perturbations (historical payloads, §IV-C).
	counts := make(map[string]int)
	hints := make(map[string]map[int][]uint64) // iface name -> arg idx -> values
	codeToDesc := make(map[string]*dsl.CallDesc, len(res.Interfaces))
	for _, d := range res.Interfaces {
		codeToDesc[fmt.Sprintf("%s#%d", d.Service, d.MethodCode)] = d
	}
	var trace []*dsl.Call // current op's distilled calls; nil = not recording
	dev.SM.SetObserver(func(descriptor string, code uint32, payload []byte) {
		if code == binder.InterfaceTransaction {
			return
		}
		d, ok := codeToDesc[fmt.Sprintf("%s#%d", descriptor, code)]
		if !ok {
			return
		}
		counts[d.Name]++
		harvestHints(hints, d, payload)
		if trace != nil {
			if c := decodeCall(d, payload); c != nil {
				trace = append(trace, c)
			}
		}
	})
	for round := 0; round < opts.WeightRounds; round++ {
		for _, op := range dev.FW.Ops() {
			record := round == 0
			if record {
				trace = []*dsl.Call{}
			}
			// Individual operations may fail on a crashed service; the
			// weighting pass tolerates it and reboots below.
			_ = op.Run()
			if record {
				if seed := distillSeed(trace); seed != nil {
					res.Seeds = append(res.Seeds, seed)
				}
				trace = nil
			}
			if !dev.Healthy() {
				dev.Reboot()
			}
		}
	}
	dev.SM.SetObserver(nil)

	// Optional step 5: runtime-parameter discovery. Knob writes happen
	// before the trailing reboot, which wipes the probe-time knob state.
	if opts.Params {
		probeParams(dev, opts, res, counts)
	}

	// The pass is pre-testing: it always hands fuzzing a freshly booted
	// device, leaving no trial or workload state behind.
	dev.Reboot()
	res.Occurrences = counts
	applyHints(res.Interfaces, hints)

	// Normalize occurrences into vertex weights in (0,1). HAL interfaces
	// and runtime parameters normalize as separate pools so one hot
	// framework API cannot crush every knob to the floor weight.
	normalizeWeights(res.Interfaces, counts, opts)
	normalizeWeights(res.Params, counts, opts)
	return res, nil
}

// normalizeWeights maps raw occurrence counts onto [MinWeight, MaxWeight],
// normalizing within the given description pool.
func normalizeWeights(descs []*dsl.CallDesc, counts map[string]int, opts Options) {
	maxCount := 0
	for _, d := range descs {
		if c := counts[d.Name]; c > maxCount {
			maxCount = c
		}
	}
	for _, d := range descs {
		c := counts[d.Name]
		if maxCount == 0 || c == 0 {
			d.Weight = opts.MinWeight
			continue
		}
		d.Weight = opts.MinWeight +
			(opts.MaxWeight-opts.MinWeight)*float64(c)/float64(maxCount)
	}
}

// probeParams discovers the writable runtime-parameter surface through the
// kernel's sysfs namespace and weights it the same way the HAL interfaces
// are weighted: vendor init scripts rewrite some knobs at every boot, and
// replaying those boot writes through the real syscall table counts one
// occurrence per write, per weighting round. Each discovered knob also
// contributes one distilled single-write seed program.
func probeParams(dev *device.Device, opts Options, res *Result, counts map[string]int) {
	descByPath := make(map[string]*dsl.CallDesc)
	for _, d := range dev.ParamDescs() {
		descByPath[d.Param] = d
	}
	boots := make(map[string]int)
	for _, kn := range dev.ParamSurface() {
		for _, spec := range kn.Specs() {
			boots[drivers.ParamPath(kn.Family(), spec.Name)] = spec.Boot
		}
	}
	k := dev.K
	strCounts := make(map[string]map[string]int)
	for _, path := range k.ParamPaths() {
		mode, ok := k.ParamMode(path)
		if !ok || mode&0o200 == 0 {
			continue // read-only attribute: not a fuzzing dimension
		}
		d := descByPath[path]
		if d == nil {
			continue
		}
		res.Params = append(res.Params, d)
		for round := 0; round < opts.WeightRounds; round++ {
			for i := 0; i < boots[path]; i++ {
				call := replayParamWrite(k, d)
				if call == nil {
					continue
				}
				counts[d.Name]++
				if d.Args[0].Type.Kind == dsl.KindString {
					m := strCounts[d.Name]
					if m == nil {
						m = make(map[string]int)
						strCounts[d.Name] = m
					}
					m[call.Args[0].Str]++
				}
				if round == 0 && i == 0 {
					res.Seeds = append(res.Seeds, &dsl.Prog{Calls: []*dsl.Call{call}})
				}
			}
		}
	}
	applyStrWeights(res.Params, strCounts, opts)
}

// applyStrWeights converts per-choice observation counts into StrWeights
// parallel to each string knob's choice list, normalized onto
// [MinWeight, MaxWeight] exactly like interface weights: the values boot
// traffic actually writes dominate generation's draws, the never-observed
// choices stay live at the floor weight. Knobs with no observed writes
// keep an empty StrWeights and draw uniformly, so their descriptions (and
// the target hash) are untouched.
func applyStrWeights(params []*dsl.CallDesc, strCounts map[string]map[string]int, opts Options) {
	for _, d := range params {
		seen := strCounts[d.Name]
		t := &d.Args[0].Type
		if len(seen) == 0 || t.Kind != dsl.KindString || len(t.StrChoices) == 0 {
			continue
		}
		maxCount := 0
		for _, c := range seen {
			if c > maxCount {
				maxCount = c
			}
		}
		if maxCount == 0 {
			continue
		}
		w := make([]float64, len(t.StrChoices))
		for i, s := range t.StrChoices {
			w[i] = opts.MinWeight +
				(opts.MaxWeight-opts.MinWeight)*float64(seen[s])/float64(maxCount)
		}
		t.StrWeights = w
	}
}

// replayParamWrite reads a knob's current value and writes it back through
// open/write/close — the same traffic a vendor init script produces — and
// returns the write distilled as a DSL call.
func replayParamWrite(k *vkernel.Kernel, d *dsl.CallDesc) *dsl.Call {
	fd, err := k.Open(device.NativePID, vkernel.OriginNative, d.Param, 0)
	if err != nil {
		return nil
	}
	defer k.Close(device.NativePID, vkernel.OriginNative, fd)
	raw, err := k.Read(device.NativePID, vkernel.OriginNative, fd, 256)
	if err != nil {
		return nil
	}
	text := strings.TrimSpace(string(raw))
	if _, err := k.Write(device.NativePID, vkernel.OriginNative, fd, []byte(text+"\n")); err != nil {
		return nil
	}
	arg := dsl.Arg{Str: text}
	if d.Args[0].Type.Kind == dsl.KindInt {
		v, perr := strconv.ParseUint(text, 0, 64)
		if perr != nil {
			return nil
		}
		arg = dsl.Arg{Val: v}
	}
	return &dsl.Call{Desc: d, Args: []dsl.Arg{arg}}
}

// maxHints bounds the distinct observed values kept per argument.
const maxHints = 8

// harvestHints decodes one observed request payload against the
// interface's signature, recording scalar argument values.
func harvestHints(hints map[string]map[int][]uint64, d *dsl.CallDesc, payload []byte) {
	p := binder.FromBytes(payload)
	for i, f := range d.Args {
		switch f.Type.Kind {
		case dsl.KindBuffer:
			if _, err := p.ReadBytes(); err != nil {
				return
			}
		case dsl.KindString, dsl.KindFilename:
			if _, err := p.ReadString(); err != nil {
				return
			}
		default:
			v, err := p.ReadUint64()
			if err != nil {
				return
			}
			if f.Type.Kind != dsl.KindInt {
				continue // flags/resources carry no reusable value
			}
			byArg := hints[d.Name]
			if byArg == nil {
				byArg = make(map[int][]uint64)
				hints[d.Name] = byArg
			}
			seen := false
			for _, h := range byArg[i] {
				if h == v {
					seen = true
					break
				}
			}
			if !seen && len(byArg[i]) < maxHints {
				byArg[i] = append(byArg[i], v)
			}
		}
	}
}

// decodeCall reconstructs one observed invocation from its payload, or nil
// if the payload does not parse against the signature.
func decodeCall(d *dsl.CallDesc, payload []byte) *dsl.Call {
	p := binder.FromBytes(payload)
	c := &dsl.Call{Desc: d, Args: make([]dsl.Arg, len(d.Args))}
	for i, f := range d.Args {
		switch f.Type.Kind {
		case dsl.KindBuffer:
			data, err := p.ReadBytes()
			if err != nil {
				return nil
			}
			c.Args[i] = dsl.Arg{Data: data}
		case dsl.KindString, dsl.KindFilename:
			s, err := p.ReadString()
			if err != nil {
				return nil
			}
			c.Args[i] = dsl.Arg{Str: s}
		default:
			v, err := p.ReadUint64()
			if err != nil {
				return nil
			}
			if f.Type.Kind == dsl.KindResource {
				c.Args[i] = dsl.Arg{Ref: -1} // linked by distillSeed
			} else {
				c.Args[i] = dsl.Arg{Val: v}
			}
		}
	}
	return c
}

// distillSeed turns one operation's observed call trace into a program,
// reconstructing resource flow by linking each resource argument to the
// most recent earlier call producing its kind.
func distillSeed(calls []*dsl.Call) *dsl.Prog {
	if len(calls) == 0 {
		return nil
	}
	p := &dsl.Prog{Calls: calls}
	for i, c := range p.Calls {
		for ai, f := range c.Desc.Args {
			if f.Type.Kind != dsl.KindResource {
				continue
			}
			for j := i - 1; j >= 0; j-- {
				if p.Calls[j].Desc.Ret == f.Type.Res {
					c.Args[ai].Ref = j
					break
				}
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil
	}
	return p
}

// applyHints attaches the harvested values to the interface descriptions.
func applyHints(ifaces []*dsl.CallDesc, hints map[string]map[int][]uint64) {
	for _, d := range ifaces {
		byArg, ok := hints[d.Name]
		if !ok {
			continue
		}
		for i := range d.Args {
			if vals := byArg[i]; len(vals) > 0 {
				d.Args[i].Type.Hints = vals
			}
		}
	}
}

// pokeService reflects one service's method table and runs a minimal Poke
// trial of every method while recording its kernel interaction.
func pokeService(dev *device.Device, desc string) (ServiceReport, []*dsl.CallDesc, error) {
	report := ServiceReport{Descriptor: desc}

	reflIn, reflOut := binder.NewParcel(), binder.NewParcel()
	if st := dev.SM.Call(desc, binder.InterfaceTransaction, reflIn, reflOut); st != binder.StatusOK {
		return report, nil, fmt.Errorf("probe: reflect %s: %v", desc, st)
	}
	methods, err := binder.UnmarshalMethods(reflOut)
	if err != nil {
		return report, nil, fmt.Errorf("probe: reflect %s: %w", desc, err)
	}
	report.Methods = len(methods)

	// Attach the trial probe: HAL-origin syscalls only.
	trialProbe := dev.Hub.Attach(ebpf.OriginFilter(vkernel.OriginHAL), 0)
	defer trialProbe.Detach()

	var ifaces []*dsl.CallDesc
	for _, m := range methods {
		in, out := binder.NewParcel(), binder.NewParcel()
		marshalTrialArgs(in, m.Args)
		// The trial outcome is irrelevant; BAD_VALUE replies still
		// confirm the interface parses its arguments.
		_ = dev.SM.Call(desc, m.Code, in, out)
		ifaces = append(ifaces, sigToDesc(desc, m))
	}
	report.TrialEvents = len(trialProbe.Take())
	return report, ifaces, nil
}

// marshalTrialArgs writes minimal trial parameters for a reflected
// signature: range minima, first choices, empty buffers, null handles.
func marshalTrialArgs(in *binder.Parcel, args []binder.ArgSig) {
	for _, a := range args {
		switch a.Kind {
		case "buffer":
			in.WriteBytes(nil)
		case "string":
			if len(a.StrChoices) > 0 {
				in.WriteString(a.StrChoices[0])
			} else {
				in.WriteString("")
			}
		case "flags":
			if len(a.Choices) > 0 {
				in.WriteUint64(a.Choices[0])
			} else {
				in.WriteUint64(0)
			}
		case "resource":
			in.WriteUint64(0) // null handle
		default:
			in.WriteUint64(a.Min)
		}
	}
}

// sigToDesc converts a reflected method signature into a DSL description.
func sigToDesc(descriptor string, m binder.MethodSig) *dsl.CallDesc {
	d := &dsl.CallDesc{
		Name:        DSLName(descriptor, m.Name),
		Class:       dsl.ClassHAL,
		Service:     descriptor,
		Method:      m.Name,
		MethodCode:  m.Code,
		Ret:         m.Ret,
		CriticalArg: -1,
	}
	for _, a := range m.Args {
		d.Args = append(d.Args, dsl.Field{Name: a.Name, Type: sigToType(a)})
	}
	return d
}

func sigToType(a binder.ArgSig) dsl.Type {
	switch a.Kind {
	case "flags":
		return dsl.Flags(a.Choices...)
	case "buffer":
		return dsl.Buffer(int(a.BufLen))
	case "string":
		return dsl.String_(a.StrChoices...)
	case "resource":
		return dsl.Resource(a.Res)
	default:
		return dsl.Int(a.Min, a.Max)
	}
}
