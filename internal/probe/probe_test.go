package probe

import (
	"strings"
	"testing"

	"droidfuzz/internal/device"
	"droidfuzz/internal/dsl"
)

func runProbe(t *testing.T, modelID string) (*device.Device, *Result) {
	t.Helper()
	m, err := device.ModelByID(modelID)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(m)
	res, err := Run(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dev, res
}

func TestProbeExtractsEveryService(t *testing.T) {
	dev, res := runProbe(t, "A1")
	if len(res.Services) != len(dev.Model.HALs) {
		t.Fatalf("services = %d, want %d", len(res.Services), len(dev.Model.HALs))
	}
	for _, s := range res.Services {
		if s.Methods == 0 {
			t.Fatalf("%s reflected no methods", s.Descriptor)
		}
	}
	if len(res.Interfaces) < 40 {
		t.Fatalf("interfaces = %d", len(res.Interfaces))
	}
	// Every interface must be a valid DSL description.
	for _, d := range res.Interfaces {
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if d.Class != dsl.ClassHAL {
			t.Fatalf("%s not HAL class", d.Name)
		}
	}
	// The pass leaves a healthy device behind.
	if !dev.Healthy() {
		t.Fatal("device unhealthy after probing")
	}
}

func TestProbeWeightsNormalized(t *testing.T) {
	_, res := runProbe(t, "A1")
	var hit, unhit int
	for _, d := range res.Interfaces {
		if d.Weight <= 0 || d.Weight >= 1 {
			t.Fatalf("%s weight %f out of (0,1)", d.Name, d.Weight)
		}
		if res.Occurrences[d.Name] > 0 {
			hit++
		} else {
			unhit++
		}
	}
	if hit == 0 {
		t.Fatal("occurrence weighting observed nothing")
	}
	// Framework-exercised interfaces outweigh never-observed ones.
	var maxUnhit, minHit float64 = 0, 1
	for _, d := range res.Interfaces {
		if res.Occurrences[d.Name] > 0 {
			if d.Weight < minHit {
				minHit = d.Weight
			}
		} else if d.Weight > maxUnhit {
			maxUnhit = d.Weight
		}
	}
	if unhit > 0 && minHit < maxUnhit {
		t.Fatalf("weighting inverted: minHit=%f maxUnhit=%f", minHit, maxUnhit)
	}
}

func TestProbeHarvestsHints(t *testing.T) {
	_, res := runProbe(t, "C1")
	// The framework programs camera rotation (control id 13): the probing
	// pass must have harvested it as a hint for setParameter's id arg.
	for _, d := range res.Interfaces {
		if d.Name != "hal$camera.provider.setParameter" {
			continue
		}
		var idHints []uint64
		for _, f := range d.Args {
			if f.Name == "id" {
				idHints = f.Type.Hints
			}
		}
		for _, h := range idHints {
			if h == 13 {
				return
			}
		}
		t.Fatalf("rotation id hint missing: %v", idHints)
	}
	t.Fatal("setParameter not extracted")
}

func TestProbeSeedsReplay(t *testing.T) {
	dev, res := runProbe(t, "A1")
	if len(res.Seeds) == 0 {
		t.Fatal("no workload seeds distilled")
	}
	for i, s := range res.Seeds {
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d invalid: %v", i, err)
		}
		if s.Len() == 0 {
			t.Fatalf("seed %d empty", i)
		}
	}
	// Seeds carry reconstructed resource flow: at least one seed links a
	// consumer to a producer.
	linked := false
	for _, s := range res.Seeds {
		for _, c := range s.Calls {
			for _, a := range c.Args {
				if a.Ref >= 0 {
					linked = true
				}
			}
		}
	}
	if !linked {
		t.Fatal("no resource flow reconstructed in seeds")
	}
	_ = dev
}

func TestProbeInterfaceNaming(t *testing.T) {
	if got := DSLName("android.hardware.graphics.composer", "createLayer"); got != "hal$graphics.composer.createLayer" {
		t.Fatalf("name = %q", got)
	}
	_, res := runProbe(t, "B")
	for _, d := range res.Interfaces {
		if !strings.HasPrefix(d.Name, "hal$") {
			t.Fatalf("bad name %q", d.Name)
		}
	}
}

func TestProbeTargetsOnlyDeviceHALs(t *testing.T) {
	// Device B has no camera provider; probing must not invent one.
	_, res := runProbe(t, "B")
	for _, d := range res.Interfaces {
		if strings.Contains(d.Name, "camera") {
			t.Fatalf("phantom interface %q on device B", d.Name)
		}
	}
}

func TestProbedDescriptionsSerializeRoundTrip(t *testing.T) {
	// The probing output must survive the Syzlang-lite file format, so a
	// firmware needs probing only once.
	_, res := runProbe(t, "C1")
	text := dsl.FormatDescs(res.Interfaces)
	parsed, err := dsl.ParseDescs(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(parsed) != len(res.Interfaces) {
		t.Fatalf("parsed %d, want %d", len(parsed), len(res.Interfaces))
	}
	if dsl.FormatDescs(parsed) != text {
		t.Fatal("format not canonical after round trip")
	}
	// The parsed set must form a valid target usable for parsing corpus
	// programs (hints included).
	if _, err := dsl.NewTarget(parsed...); err != nil {
		t.Fatal(err)
	}
	hintSurvived := false
	for _, d := range parsed {
		for _, f := range d.Args {
			if len(f.Type.Hints) > 0 {
				hintSurvived = true
			}
		}
	}
	if !hintSurvived {
		t.Fatal("argument hints lost in serialization")
	}
}
