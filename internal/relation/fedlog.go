package relation

import "sync"

// Log is an append-only journal of learn records. Two places keep one: a
// federated host journals the ops its applier lands in the local graph (the
// uplink reads suffixes by index), and the coordinator journals every op
// accepted from the fleet — its merged graph is *defined* as the replay of
// that journal, which is what makes federation merge commutative: however
// batches arrive, the deduplicated journal sorts to the same (device, seq)
// sequence and replays to the same graph.
type Log struct {
	mu  sync.Mutex
	ops []LearnOp
}

// NewLog returns an empty journal.
func NewLog() *Log { return &Log{} }

// Append records ops in arrival order.
func (l *Log) Append(ops ...LearnOp) {
	if len(ops) == 0 {
		return
	}
	l.mu.Lock()
	l.ops = append(l.ops, ops...)
	l.mu.Unlock()
}

// Len reports how many ops the journal holds. The journal is append-only,
// so a Len value is a stable cursor: Since(cursor) later returns exactly
// the ops recorded after it was taken.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

// Since returns a copy of the ops from index i on.
func (l *Log) Since(i int) []LearnOp {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(l.ops) {
		return nil
	}
	out := make([]LearnOp, len(l.ops)-i)
	copy(out, l.ops[i:])
	return out
}

// Ops returns a copy of the whole journal in arrival order.
func (l *Log) Ops() []LearnOp { return l.Since(0) }

// Replay applies ops to g in (device, sequence) order without mutating the
// caller's slice — the offline reconstruction path: a fresh graph with the
// campaign's vertex set, Replayed with the recorded journal, reproduces the
// coordinator's merged graph edge for edge.
func Replay(g *Graph, ops []LearnOp) int {
	cp := make([]LearnOp, len(ops))
	copy(cp, ops)
	return g.ApplyOps(cp)
}
