package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestCheckInvariantsCleanGraph: a freshly learned graph passes.
func TestCheckInvariantsCleanGraph(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c"} {
		g.AddVertex(n, 1)
	}
	g.Learn("a", "b")
	g.Learn("c", "b")
	g.Learn("b", "c")
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("clean graph flagged: %v", err)
	}
}

// TestCheckInvariantsDetectsCorruption: each hand-broken invariant is
// reported. The graph internals are reached directly (same package) the
// way a buggy mutation would reach them.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Graph {
		g := New()
		for _, n := range []string{"a", "b", "c"} {
			g.AddVertex(n, 1)
		}
		g.Learn("a", "b")
		g.Learn("c", "b")
		return g
	}

	t.Run("mirror-mismatch", func(t *testing.T) {
		g := build()
		g.verts["a"].Out["b"] = 0.9 // In side still holds the old weight
		if err := g.CheckInvariants(); err == nil {
			t.Fatal("mirror mismatch not detected")
		}
	})
	t.Run("missing-in-mirror", func(t *testing.T) {
		g := build()
		delete(g.verts["b"].In, "a")
		if err := g.CheckInvariants(); err == nil {
			t.Fatal("missing In mirror not detected")
		}
	})
	t.Run("weight-above-one", func(t *testing.T) {
		g := build()
		g.verts["a"].Out["b"] = 1.5
		g.verts["b"].In["a"] = 1.5
		if err := g.CheckInvariants(); err == nil {
			t.Fatal("weight > 1 not detected")
		}
	})
	t.Run("negative-weight", func(t *testing.T) {
		g := build()
		g.verts["a"].Out["b"] = -0.25
		g.verts["b"].In["a"] = -0.25
		if err := g.CheckInvariants(); err == nil {
			t.Fatal("negative weight not detected")
		}
	})
	t.Run("in-sum-above-one", func(t *testing.T) {
		g := build()
		// Both mirrored consistently, but the in-weights of b sum past 1:
		// the Eq. (1) normalization violation.
		g.verts["a"].Out["b"] = 0.8
		g.verts["b"].In["a"] = 0.8
		g.verts["c"].Out["b"] = 0.8
		g.verts["b"].In["c"] = 0.8
		if err := g.CheckInvariants(); err == nil {
			t.Fatal("in-weight sum > 1 not detected")
		}
	})
	t.Run("edge-counter-drift", func(t *testing.T) {
		g := build()
		g.edges++
		if err := g.CheckInvariants(); err == nil {
			t.Fatal("edge counter drift not detected")
		}
	})
}

// TestGraphInvariantsWithMixedParamLearns interleaves param-write and ioctl
// vertices through random Learn/Decay sequences, the shape a param-enabled
// campaign produces: Eq. (1) normalization, the Out/In mirror, and the
// published snapshot's Successors/Predecessors views must all stay
// consistent with both call classes in the graph.
func TestGraphInvariantsWithMixedParamLearns(t *testing.T) {
	names := []string{
		"param$tcpc.max_contract_mv", "param$tcpc.pd_compliance",
		"param$wlan.ps_mode", "param$gpu.max_freq_mhz",
		"ioctl$TCPC_SET_VOLTAGE", "ioctl$TCPC_SET_MODE",
		"ioctl$WLAN_SCAN", "ioctl$GPU_SUBMIT",
		"open$tcpc", "hal$graphics.createLayer",
	}
	for _, seed := range []int64{3, 1337} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := New()
			for _, n := range names {
				g.AddVertex(n, 0.1+rng.Float64())
			}
			for op := 0; op < 5000; op++ {
				switch {
				case rng.Intn(20) == 0:
					g.Decay(0.5+rng.Float64()*0.45, rng.Float64()*0.05)
				default:
					g.Learn(names[rng.Intn(len(names))], names[rng.Intn(len(names))])
				}
				if err := g.CheckInvariants(); err != nil {
					t.Fatalf("op %d: invariants broken: %v", op, err)
				}
				if op%500 != 0 {
					continue
				}
				// The published views mirror each other exactly: every
				// successor edge a→b appears among b's predecessors with
				// the same weight, and vice versa — param and ioctl
				// vertices alike.
				s := g.Snapshot()
				for _, a := range names {
					for _, e := range s.Successors(a) {
						found := false
						for _, p := range s.Predecessors(e.To) {
							if p.From == a && p.Weight == e.Weight {
								found = true
							}
						}
						if !found {
							t.Fatalf("op %d: edge %s→%s (w=%g) missing from Predecessors(%s)",
								op, a, e.To, e.Weight, e.To)
						}
					}
					for _, e := range s.Predecessors(a) {
						found := false
						for _, sc := range s.Successors(e.From) {
							if sc.To == a && sc.Weight == e.Weight {
								found = true
							}
						}
						if !found {
							t.Fatalf("op %d: edge %s→%s (w=%g) missing from Successors(%s)",
								op, e.From, a, e.Weight, e.From)
						}
					}
				}
			}
		})
	}
}

// TestGraphInvariantsUnderRandomOps drives long random Learn/Decay
// sequences through the invariant checker: 10k operations per seed, the
// invariants verified after every operation. This is the property test for
// the §IV-C math — no sequence of halvings and decays may push an
// in-weight sum past 1, desynchronize the Out/In mirrors, or leave an edge
// below the decay floor.
func TestGraphInvariantsUnderRandomOps(t *testing.T) {
	const (
		vertices = 12
		ops      = 10000
	)
	for _, seed := range []int64{1, 42, 20260806} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := New()
			names := make([]string, vertices)
			for i := range names {
				names[i] = fmt.Sprintf("call%02d", i)
				g.AddVertex(names[i], 0.1+rng.Float64())
			}
			for op := 0; op < ops; op++ {
				if rng.Intn(10) == 0 {
					factor := 0.5 + rng.Float64()*0.45
					floor := rng.Float64() * 0.05
					g.Decay(factor, floor)
					if err := g.CheckInvariants(); err != nil {
						t.Fatalf("op %d: Decay(%g, %g) broke invariants: %v", op, factor, floor, err)
					}
					// The floor holds immediately after a decay.
					if err := g.checkInvariantsLocked(floor); err != nil {
						t.Fatalf("op %d: decay floor violated: %v", op, err)
					}
				} else {
					a := names[rng.Intn(vertices)]
					b := names[rng.Intn(vertices)]
					g.Learn(a, b)
					if err := g.CheckInvariants(); err != nil {
						t.Fatalf("op %d: Learn(%s, %s) broke invariants: %v", op, a, b, err)
					}
				}
			}
			if g.Len() != vertices {
				t.Fatalf("vertex count changed: %d", g.Len())
			}
		})
	}
}
