package relation

import (
	"sort"
	"sync"
)

// LearnOp is one deferred Learn recorded by an engine during a parallel
// campaign: the ordered dependency pair plus the (device, sequence) key the
// daemon sorts on before applying.
type LearnOp struct {
	A, B   string
	Device string
	Seq    uint64
}

// LearnBuffer queues an engine's Learn calls during parallel campaigns so
// the shared graph is not locked on the engine's hot path. Each engine owns
// one buffer; the daemon periodically drains every buffer and applies the
// collected ops through Graph.ApplyBuffered in deterministic (device-ID,
// sequence) order. Serial campaigns never use buffers — their Learns stay
// synchronous, which is what keeps the golden replay tests bit-identical.
type LearnBuffer struct {
	mu     sync.Mutex
	device string
	ops    []LearnOp
	seq    uint64
}

// NewLearnBuffer returns an empty buffer keyed by the owning device ID.
func NewLearnBuffer(device string) *LearnBuffer {
	return &LearnBuffer{device: device}
}

// Device returns the owning device ID.
func (b *LearnBuffer) Device() string { return b.device }

// Learn queues the dependency a→to with the next per-buffer sequence
// number. The buffer lock is uncontended in steady state — only the owning
// engine appends and only the daemon's applier drains.
func (b *LearnBuffer) Learn(a, to string) {
	b.mu.Lock()
	b.ops = append(b.ops, LearnOp{A: a, B: to, Device: b.device, Seq: b.seq})
	b.seq++
	b.mu.Unlock()
}

// Len reports how many ops are queued.
func (b *LearnBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ops)
}

// Drain removes and returns the queued ops in recording order.
func (b *LearnBuffer) Drain() []LearnOp {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.ops) == 0 {
		return nil
	}
	ops := b.ops
	b.ops = nil
	return ops
}

// DrainAll drains every buffer, concatenating the ops in drain order.
// Callers needing the deterministic application order sort with SortOps
// (ApplyOps does); callers journaling for federation keep the raw drain.
func DrainAll(bufs ...*LearnBuffer) []LearnOp {
	var ops []LearnOp
	for _, b := range bufs {
		ops = append(ops, b.Drain()...)
	}
	return ops
}

// SortOps orders ops by (device ID, sequence) in place — the total order
// every parallel and federated replay applies learns under. (device, seq)
// pairs are unique fleet-wide (device IDs carry the host prefix), so the
// order is total and the sort deterministic.
func SortOps(ops []LearnOp) {
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Device != ops[j].Device {
			return ops[i].Device < ops[j].Device
		}
		return ops[i].Seq < ops[j].Seq
	})
}

// ApplyOps sorts ops by (device, sequence) in place and applies them, so
// the application order — and therefore the resulting edge weights, which
// Eq. (1) makes order-sensitive — depends only on what was recorded, never
// on drain timing or goroutine scheduling. It returns the number of ops
// applied.
func (g *Graph) ApplyOps(ops []LearnOp) int {
	if len(ops) == 0 {
		return 0
	}
	SortOps(ops)
	for _, op := range ops {
		g.Learn(op.A, op.B)
	}
	return len(ops)
}

// ApplyBuffered drains every buffer and applies the collected ops in
// (device, sequence) order; see ApplyOps.
func (g *Graph) ApplyBuffered(bufs ...*LearnBuffer) int {
	return g.ApplyOps(DrainAll(bufs...))
}
