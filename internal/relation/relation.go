// Package relation implements DroidFuzz's kernel–user relation graph
// (paper §IV-C): a directed weighted graph G_rel = (V, E) whose vertices are
// the individual system calls and HAL interfaces, each carrying a fixed
// weight w ∈ (0,1) that is the probability mass of being chosen as the base
// invocation, and whose edges carry learned dependency confidence.
//
// When a minimized program reveals new coverage, each adjacent ordered pair
// a→b is learned with the paper's Eq. (1):
//
//	w(a,b) = 1 - Σ_{e=(x,b), x≠a} w(x,b) / 2
//
// while the other edges into b are halved, so the in-weights of b stay
// normalized to 1 and the freshest dependency dominates. Periodic decay
// multiplies all edge weights by a factor < 1 to keep exploration alive.
package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
)

// Vertex is one system call or HAL interface node.
type Vertex struct {
	Name string
	// Weight is the fixed base-invocation weight from descriptions
	// (syscalls) or probing (HAL interfaces).
	Weight float64
	// Out maps successor names to edge weights (dependency a→b means b
	// depends on a having run before it).
	Out map[string]float64
	// In maps predecessor names to the same edge weights.
	In map[string]float64
}

// Graph is the relation graph. Safe for concurrent use: the daemon shares
// one relation table across fuzzing engines (paper §IV-A).
type Graph struct {
	mu    sync.Mutex
	verts map[string]*Vertex
	names []string // insertion order for deterministic iteration
	edges int
	// learns counts Learn operations, for stats.
	learns uint64
	// snap is the published immutable view; mutators store nil and the
	// next Snapshot() call rebuilds under mu. Generation-time reads
	// (PickBase, Walk, Successors) go through it lock-free.
	snap atomic.Pointer[Snapshot]
	san  graphSan
}

// New returns a graph with no vertices.
func New() *Graph {
	return &Graph{verts: make(map[string]*Vertex)}
}

// AddVertex inserts a vertex with the given base weight. Re-adding an
// existing name updates its weight and keeps its edges.
func (g *Graph) AddVertex(name string, weight float64) {
	if weight <= 0 {
		weight = 0.01
	}
	if weight >= 1 {
		weight = 0.99
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	defer g.invalidateLocked()
	if v, ok := g.verts[name]; ok {
		v.Weight = weight
		return
	}
	g.verts[name] = &Vertex{
		Name:   name,
		Weight: weight,
		Out:    make(map[string]float64),
		In:     make(map[string]float64),
	}
	g.names = append(g.names, name)
}

// Vertex returns a snapshot copy of the named vertex, or nil.
func (g *Graph) Vertex(name string) *Vertex {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.verts[name]
	if !ok {
		return nil
	}
	c := &Vertex{Name: v.Name, Weight: v.Weight,
		Out: make(map[string]float64, len(v.Out)),
		In:  make(map[string]float64, len(v.In))}
	// Plain map copies: the resulting maps are identical regardless of
	// iteration order.
	for k, w := range v.Out { //droidvet:nondet order-independent map copy
		c.Out[k] = w
	}
	for k, w := range v.In { //droidvet:nondet order-independent map copy
		c.In[k] = w
	}
	return c
}

// Len reports the number of vertices.
func (g *Graph) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.verts)
}

// Edges reports the number of directed edges.
func (g *Graph) Edges() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.edges
}

// Learns reports how many relations were learned since construction.
func (g *Graph) Learns() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.learns
}

// EdgeWeight returns the weight of a→b, or 0 if absent.
func (g *Graph) EdgeWeight(a, b string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	va, ok := g.verts[a]
	if !ok {
		return 0
	}
	return va.Out[b]
}

// Learn records the dependency a→b per Eq. (1): existing sibling edges into
// b are halved, and the new edge takes the remaining normalized mass.
// Unknown vertices are ignored (descriptions change across probing runs).
func (g *Graph) Learn(a, b string) {
	if a == b {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	va, ok := g.verts[a]
	if !ok {
		return
	}
	vb, ok := g.verts[b]
	if !ok {
		return
	}
	if _, existed := va.Out[b]; !existed {
		g.edges++
	}
	// Halve the other edges into b, summing their halved weights. The
	// iteration is sorted so floating-point accumulation is identical
	// across runs — campaigns must replay bit-exactly from a seed.
	siblings := make([]string, 0, len(vb.In))
	for x := range vb.In {
		if x != a {
			siblings = append(siblings, x)
		}
	}
	sort.Strings(siblings)
	var sum float64
	for _, x := range siblings {
		half := vb.In[x] / 2
		vb.In[x] = half
		g.verts[x].Out[b] = half
		sum += half
	}
	w := 1 - sum
	if w < 0 {
		w = 0
	}
	va.Out[b] = w
	vb.In[a] = w
	g.learns++
	g.invalidateLocked()
	g.sanCheck("Learn", 0)
}

// Decay multiplies every edge weight by factor (0 < factor < 1), the
// periodic reduction that keeps DroidFuzz exploring new interaction paths.
// Edges decayed below floor are pruned.
func (g *Graph) Decay(factor, floor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Each edge is scaled (or pruned) independently — no cross-edge reads —
	// so the post-decay graph is identical in any iteration order. Learn is
	// the order-sensitive path and iterates sorted siblings instead.
	for _, v := range g.verts { //droidvet:nondet order-independent per-edge decay
		for b, w := range v.Out { //droidvet:nondet order-independent per-edge decay
			nw := w * factor
			if nw < floor {
				delete(v.Out, b)
				delete(g.verts[b].In, v.Name)
				g.edges--
				continue
			}
			v.Out[b] = nw
			g.verts[b].In[v.Name] = nw
		}
	}
	g.invalidateLocked()
	g.sanCheck("Decay", floor)
}

// PickBase draws a base invocation: vertices are sampled proportionally to
// their fixed weights (paper: the vertex weight "corresponds to the
// probability at which the system call or interface is chosen during
// generation as the base invocation"). It delegates to the published
// Snapshot, whose arithmetic replays the historical locked implementation
// draw-for-draw.
func (g *Graph) PickBase(rng *rand.Rand) string {
	return g.Snapshot().PickBase(rng)
}

// Successors returns the out-edges of name sorted by descending weight.
// The returned slice is the caller's to keep; hot paths that can honor the
// read-only contract should use Snapshot().Successors instead, which skips
// the copy.
func (g *Graph) Successors(name string) []Edge {
	succ := g.Snapshot().Successors(name)
	if succ == nil {
		return nil
	}
	out := make([]Edge, len(succ))
	copy(out, succ)
	return out
}

// Edge is one directed dependency with its confidence weight.
type Edge struct {
	From, To string
	Weight   float64
}

// Walk performs the generation-time traversal: starting from `from`, it
// repeatedly steps to a successor with probability proportional to edge
// weight, stopping when the stop probability fires or no successor exists.
// The returned slice excludes the starting vertex and has at most maxLen
// elements.
func (g *Graph) Walk(rng *rand.Rand, from string, maxLen int, stopProb float64) []string {
	return g.Snapshot().Walk(rng, from, maxLen, stopProb)
}

// Names returns the vertex names in insertion order.
func (g *Graph) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.names))
	copy(out, g.names)
	return out
}

// String summarizes the graph.
func (g *Graph) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return fmt.Sprintf("relation.Graph(%d vertices, %d edges, %d learned)",
		len(g.verts), g.edges, g.learns)
}

// CheckInvariants verifies the graph's structural invariants — the
// properties every perf shortcut and the §IV-C math rely on:
//
//   - Out/In mirror consistency: w(a,b) recorded in a.Out equals the copy
//     in b.In, and neither side has an edge the other lacks;
//   - weight range: every edge weight is in [0, 1] (Eq. (1) assigns the
//     normalized remainder, never more);
//   - Eq. (1) normalization: the in-weight sum of every vertex is ≤ 1
//     (within float tolerance);
//   - the edge counter matches the number of Out entries.
//
// It returns the first violation found, or nil. The droidfuzz_sanitize
// build runs it after every Learn and Decay; tests and tools may call it
// directly at any time.
func (g *Graph) CheckInvariants() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.sanVerifySnapLocked()
	return g.checkInvariantsLocked(0)
}

// checkInvariantsLocked is CheckInvariants with g.mu already held; a
// positive minWeight additionally asserts the decay floor (no surviving
// edge below it — Decay must prune, not underflow).
func (g *Graph) checkInvariantsLocked(minWeight float64) error {
	const eps = 1e-6
	edges := 0
	// Validation scans: each edge is checked independently and the
	// tolerance-compared sum is order-insensitive at eps scale.
	for _, v := range g.verts { //droidvet:nondet order-independent validation scan
		edges += len(v.Out)
		for b, w := range v.Out { //droidvet:nondet order-independent validation scan
			vb, ok := g.verts[b]
			if !ok {
				return fmt.Errorf("edge %s->%s points at a missing vertex", v.Name, b)
			}
			in, ok := vb.In[v.Name]
			if !ok {
				return fmt.Errorf("edge %s->%s has no In mirror", v.Name, b)
			}
			if in != w {
				return fmt.Errorf("edge %s->%s mirror mismatch: Out=%g In=%g", v.Name, b, w, in)
			}
			if w < 0 || w > 1+eps {
				return fmt.Errorf("edge %s->%s weight %g outside [0,1]", v.Name, b, w)
			}
			if minWeight > 0 && w < minWeight {
				return fmt.Errorf("edge %s->%s weight %g survived below the decay floor %g", v.Name, b, w, minWeight)
			}
		}
		for a, w := range v.In { //droidvet:nondet order-independent validation scan
			va, ok := g.verts[a]
			if !ok {
				return fmt.Errorf("in-edge %s->%s names a missing vertex", a, v.Name)
			}
			if out, ok := va.Out[v.Name]; !ok || out != w {
				return fmt.Errorf("in-edge %s->%s has no matching Out entry", a, v.Name)
			}
		}
		var sum float64
		for _, w := range v.In { //droidvet:nondet tolerance-compared sum
			sum += w
		}
		if sum > 1+eps {
			return fmt.Errorf("in-weight sum of %s is %g > 1: Eq. (1) normalization violated", v.Name, sum)
		}
	}
	if edges != g.edges {
		return fmt.Errorf("edge counter %d does not match %d recorded edges", g.edges, edges)
	}
	return nil
}

// InWeightSum returns the total in-edge weight of b (≈1 after learning, by
// Eq. (1) normalization); exposed for tests and invariant checks.
func (g *Graph) InWeightSum(b string) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.verts[b]
	if !ok {
		return 0
	}
	var sum float64
	// Float summation order varies with map order, but this accessor only
	// feeds tolerance-compared invariant checks and tests, never the
	// engine's decision path.
	for _, w := range v.In { //droidvet:nondet tolerance-compared diagnostic sum
		sum += w
	}
	return sum
}
