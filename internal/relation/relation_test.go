package relation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddVertexClampsWeights(t *testing.T) {
	g := New()
	g.AddVertex("a", -1)
	g.AddVertex("b", 2)
	g.AddVertex("c", 0.5)
	if w := g.Vertex("a").Weight; w <= 0 || w >= 1 {
		t.Fatalf("a weight = %f", w)
	}
	if w := g.Vertex("b").Weight; w <= 0 || w >= 1 {
		t.Fatalf("b weight = %f", w)
	}
	if g.Vertex("c").Weight != 0.5 {
		t.Fatal("c weight wrong")
	}
	if g.Len() != 3 {
		t.Fatalf("len = %d", g.Len())
	}
	// Re-adding updates the weight, keeps the vertex.
	g.AddVertex("c", 0.7)
	if g.Vertex("c").Weight != 0.7 || g.Len() != 3 {
		t.Fatal("re-add broken")
	}
}

func TestLearnEquation1Exact(t *testing.T) {
	g := New()
	for _, v := range []string{"a", "b", "x", "y"} {
		g.AddVertex(v, 0.5)
	}
	// First relation into b: full weight.
	g.Learn("a", "b")
	if w := g.EdgeWeight("a", "b"); w != 1 {
		t.Fatalf("w(a,b) = %f, want 1", w)
	}
	// Second relation into b from x: a's edge halves (0.5), x gets
	// 1 - 0.5 = 0.5.
	g.Learn("x", "b")
	if w := g.EdgeWeight("a", "b"); w != 0.5 {
		t.Fatalf("w(a,b) = %f, want 0.5", w)
	}
	if w := g.EdgeWeight("x", "b"); w != 0.5 {
		t.Fatalf("w(x,b) = %f, want 0.5", w)
	}
	// Third: a -> 0.25, x -> 0.25, y -> 1 - 0.5 = 0.5.
	g.Learn("y", "b")
	if w := g.EdgeWeight("a", "b"); w != 0.25 {
		t.Fatalf("w(a,b) = %f", w)
	}
	if w := g.EdgeWeight("y", "b"); w != 0.5 {
		t.Fatalf("w(y,b) = %f", w)
	}
	// Re-learning an existing edge re-normalizes toward it.
	g.Learn("a", "b")
	if w := g.EdgeWeight("a", "b"); math.Abs(w-0.625) > 1e-9 {
		t.Fatalf("w(a,b) = %f, want 0.625", w)
	}
}

// TestLearnInWeightInvariant checks Eq. (1)'s normalization: after any
// learn sequence, in-weights of every vertex sum to exactly 1 (or 0 if
// nothing was learned into it).
func TestLearnInWeightInvariant(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	f := func(pairs []uint8) bool {
		g := New()
		for _, n := range names {
			g.AddVertex(n, 0.5)
		}
		learned := make(map[string]bool)
		for _, p := range pairs {
			from := names[int(p>>4)%len(names)]
			to := names[int(p&0xf)%len(names)]
			if from == to {
				continue
			}
			g.Learn(from, to)
			learned[to] = true
		}
		for _, n := range names {
			sum := g.InWeightSum(n)
			if learned[n] {
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			} else if sum != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLearnIgnoresUnknownAndSelf(t *testing.T) {
	g := New()
	g.AddVertex("a", 0.5)
	g.Learn("a", "ghost")
	g.Learn("ghost", "a")
	g.Learn("a", "a")
	if g.Edges() != 0 || g.Learns() != 0 {
		t.Fatal("phantom learn recorded")
	}
}

func TestDecayAndPrune(t *testing.T) {
	g := New()
	g.AddVertex("a", 0.5)
	g.AddVertex("b", 0.5)
	g.Learn("a", "b")
	g.Decay(0.5, 0.01)
	if w := g.EdgeWeight("a", "b"); w != 0.5 {
		t.Fatalf("w = %f", w)
	}
	// Decay to below the floor prunes the edge entirely.
	for i := 0; i < 10; i++ {
		g.Decay(0.5, 0.01)
	}
	if g.EdgeWeight("a", "b") != 0 || g.Edges() != 0 {
		t.Fatal("edge not pruned")
	}
	// Invalid factors are ignored.
	g.Learn("a", "b")
	g.Decay(0, 0.01)
	g.Decay(1.5, 0.01)
	if g.EdgeWeight("a", "b") != 1 {
		t.Fatal("invalid decay applied")
	}
}

func TestPickBaseFollowsWeights(t *testing.T) {
	g := New()
	g.AddVertex("heavy", 0.9)
	g.AddVertex("light", 0.01)
	rng := rand.New(rand.NewSource(1))
	heavy := 0
	for i := 0; i < 2000; i++ {
		if g.PickBase(rng) == "heavy" {
			heavy++
		}
	}
	// Expected ~ 0.9/0.91 = 98.9%.
	if heavy < 1800 {
		t.Fatalf("heavy picked %d/2000", heavy)
	}
	empty := New()
	if empty.PickBase(rng) != "" {
		t.Fatal("empty graph picked something")
	}
}

func TestWalkFollowsEdgesAndBounds(t *testing.T) {
	g := New()
	for _, v := range []string{"a", "b", "c", "d"} {
		g.AddVertex(v, 0.5)
	}
	g.Learn("a", "b")
	g.Learn("b", "c")
	g.Learn("c", "d")
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		path := g.Walk(rng, "a", 3, 0.0)
		if len(path) > 3 {
			t.Fatalf("path too long: %v", path)
		}
		// With stopProb 0 and single successors, the path is b, c, d.
		if len(path) == 3 && (path[0] != "b" || path[1] != "c" || path[2] != "d") {
			t.Fatalf("path = %v", path)
		}
	}
	// stopProb 1 never walks.
	if len(g.Walk(rng, "a", 3, 1.0)) != 0 {
		t.Fatal("walk ignored stop probability")
	}
	// Walking from a sink is empty.
	if len(g.Walk(rng, "d", 3, 0.0)) != 0 {
		t.Fatal("walk from sink")
	}
}

func TestSuccessorsSorted(t *testing.T) {
	g := New()
	for _, v := range []string{"a", "b", "c", "d"} {
		g.AddVertex(v, 0.5)
	}
	g.Learn("a", "b") // later halved twice
	g.Learn("a", "c") // later halved once? (edges out of a are independent)
	g.Learn("a", "d")
	succ := g.Successors("a")
	if len(succ) != 3 {
		t.Fatalf("successors = %d", len(succ))
	}
	for i := 1; i < len(succ); i++ {
		if succ[i-1].Weight < succ[i].Weight {
			t.Fatal("not sorted by weight")
		}
	}
}

func TestNamesStableOrder(t *testing.T) {
	g := New()
	g.AddVertex("z", 0.5)
	g.AddVertex("a", 0.5)
	names := g.Names()
	if names[0] != "z" || names[1] != "a" {
		t.Fatalf("names = %v (insertion order expected)", names)
	}
}
