//go:build !droidfuzz_sanitize

package relation

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = false

// sanCheck is a no-op in normal builds; Learn and Decay call it
// unconditionally and the compiler erases the call. Build with
// -tags droidfuzz_sanitize to run CheckInvariants after every mutation.
func (g *Graph) sanCheck(string, float64) {}

// graphSan and snapSan are zero-sized in normal builds; the sanitize build
// uses them to fingerprint published snapshots and panic on
// write-after-publish.
type graphSan struct{}

type snapSan struct{}

func (g *Graph) sanSealLocked(*Snapshot) {}

func (g *Graph) sanVerifySnapLocked() {}
