//go:build droidfuzz_sanitize

package relation

import (
	"fmt"
	"math"
)

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = true

// graphSan tracks the most recently published snapshot so the sanitizer can
// re-verify its fingerprint: a published Snapshot is an immutability
// contract, and any write after publication must stop the campaign.
type graphSan struct {
	last *Snapshot
}

// snapSan carries the fingerprint sealed at publication time.
type snapSan struct {
	sum uint64
}

// sanSealLocked verifies the previously published snapshot is untouched,
// then fingerprints and remembers the new one; g.mu must be held.
func (g *Graph) sanSealLocked(s *Snapshot) {
	g.sanVerifySnapLocked()
	s.san.sum = s.fingerprint()
	g.san.last = s
}

// sanVerifySnapLocked panics if the last published snapshot was mutated
// after publication; g.mu must be held. Called on every reseal and from
// CheckInvariants, so the engine's per-step sanitize sweep covers it too.
func (g *Graph) sanVerifySnapLocked() {
	p := g.san.last
	if p == nil {
		return
	}
	if got := p.fingerprint(); got != p.san.sum {
		panic(fmt.Sprintf("droidfuzz_sanitize: published relation.Snapshot was mutated after publication (fingerprint %#x, sealed %#x) — snapshots are immutable by contract; copy before editing", got, p.san.sum))
	}
}

// fingerprint hashes every name, weight and edge of the snapshot with
// FNV-1a; any single-bit mutation of the published view changes it.
func (s *Snapshot) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	str := func(v string) {
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	for i, name := range s.names {
		str(name)
		mix(math.Float64bits(s.weights[i]))
		for _, e := range s.succ[i] {
			str(e.From)
			str(e.To)
			mix(math.Float64bits(e.Weight))
		}
		for _, e := range s.pred[i] {
			str(e.From)
			str(e.To)
			mix(math.Float64bits(e.Weight))
		}
	}
	mix(uint64(s.edges))
	mix(s.learns)
	return h
}

// sanCheck runs the full invariant sweep after a mutation (Learn, Decay)
// while g.mu is still held, and panics on the first violation — in a
// sanitize build a broken graph must stop the campaign at the mutation
// that broke it, not surface later as skewed generation probabilities.
func (g *Graph) sanCheck(op string, minWeight float64) {
	if err := g.checkInvariantsLocked(minWeight); err != nil {
		panic(fmt.Sprintf("droidfuzz_sanitize: relation.Graph invariant violated after %s: %v", op, err))
	}
}
