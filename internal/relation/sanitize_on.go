//go:build droidfuzz_sanitize

package relation

import "fmt"

// SanitizeEnabled reports whether the droidfuzz_sanitize build tag is on.
const SanitizeEnabled = true

// sanCheck runs the full invariant sweep after a mutation (Learn, Decay)
// while g.mu is still held, and panics on the first violation — in a
// sanitize build a broken graph must stop the campaign at the mutation
// that broke it, not surface later as skewed generation probabilities.
func (g *Graph) sanCheck(op string, minWeight float64) {
	if err := g.checkInvariantsLocked(minWeight); err != nil {
		panic(fmt.Sprintf("droidfuzz_sanitize: relation.Graph invariant violated after %s: %v", op, err))
	}
}
