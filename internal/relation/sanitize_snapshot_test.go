//go:build droidfuzz_sanitize

package relation

import (
	"strings"
	"testing"
)

// TestMutatedSnapshotPanics: writing into a published snapshot (here via
// the shared Successors storage) must panic at the next reseal with a
// message naming the immutability contract.
func TestMutatedSnapshotPanics(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c"} {
		g.AddVertex(n, 0.3)
	}
	g.Learn("a", "b")
	s := g.Snapshot()
	succ := s.Successors("a")
	if len(succ) == 0 {
		t.Fatal("fixture has no a-successors")
	}
	succ[0].Weight = 99 // illegal: snapshot storage is shared read-only

	g.Learn("b", "c") // invalidates; next read reseals and verifies
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		_ = g.Snapshot()
	}()
	if msg == "" {
		t.Fatal("mutated published snapshot did not panic on reseal")
	}
	if !strings.Contains(msg, "relation.Snapshot") || !strings.Contains(msg, "immutable") {
		t.Fatalf("unhelpful panic message: %q", msg)
	}
}

// TestUntouchedSnapshotReseals: the legitimate publish→invalidate→rebuild
// cycle must never trip the immutability check.
func TestUntouchedSnapshotReseals(t *testing.T) {
	g := New()
	for _, n := range []string{"a", "b", "c"} {
		g.AddVertex(n, 0.3)
	}
	for i := 0; i < 50; i++ {
		g.Learn("a", "b")
		_ = g.Snapshot()
		g.Learn("b", "c")
		g.Decay(0.95, 0.01)
		_ = g.Snapshot()
		if err := g.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
