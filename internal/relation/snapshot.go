package relation

import (
	"math/rand"
	"sort"
)

// Snapshot is an immutable point-in-time view of the Graph. The daemon
// shares one relation table across every fuzzing engine (paper §IV-A), and
// at fleet scale the per-step lock+sort inside PickBase/Walk/Successors is
// what serializes generation. A Snapshot is built once under the master
// lock, published through an atomic pointer, and from then on read without
// any synchronization: names, weights and pre-sorted successor lists are
// plain slices that no goroutine may write again.
//
// Mutators (AddVertex, Learn, Decay) invalidate the published pointer; the
// next Snapshot call rebuilds lazily. Under -tags droidfuzz_sanitize each
// published snapshot carries a fingerprint that is re-verified before the
// replacement is sealed, so any write-after-publish panics at the rebuild
// that detects it.
type Snapshot struct {
	names   []string // insertion order, mirroring Graph.names
	weights []float64
	index   map[string]int
	succ    [][]Edge // per vertex, sorted by weight desc then name asc
	pred    [][]Edge // per vertex, in-edges sorted by weight desc then name asc
	edges   int
	learns  uint64
	san     snapSan
}

// Snapshot returns the current immutable view, rebuilding it under the
// master lock only if a mutation invalidated the published one. The
// steady-state cost is a single atomic load.
func (g *Graph) Snapshot() *Snapshot {
	if s := g.snap.Load(); s != nil {
		return s
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Another reader may have rebuilt while we waited for the lock.
	if s := g.snap.Load(); s != nil {
		return s
	}
	s := g.buildSnapshotLocked()
	g.sanSealLocked(s)
	g.snap.Store(s)
	return s
}

// invalidateLocked drops the published snapshot; g.mu must be held. The
// rebuild is deferred to the next read so a burst of Learns pays for one
// rebuild, not one per mutation.
func (g *Graph) invalidateLocked() {
	g.snap.Store(nil)
}

// buildSnapshotLocked materializes the immutable view; g.mu must be held.
// Construction order is deterministic: vertices in insertion order,
// successor lists sorted with the same comparator Successors always used,
// so a snapshot-backed campaign replays bit-identically to the lock-based
// implementation it replaced.
func (g *Graph) buildSnapshotLocked() *Snapshot {
	s := &Snapshot{
		names:   make([]string, len(g.names)),
		weights: make([]float64, len(g.names)),
		index:   make(map[string]int, len(g.names)),
		succ:    make([][]Edge, len(g.names)),
		pred:    make([][]Edge, len(g.names)),
		edges:   g.edges,
		learns:  g.learns,
	}
	copy(s.names, g.names)
	for i, name := range s.names {
		v := g.verts[name]
		s.weights[i] = v.Weight
		s.index[name] = i
		if len(v.Out) > 0 {
			out := make([]Edge, 0, len(v.Out))
			for b, w := range v.Out {
				out = append(out, Edge{From: name, To: b, Weight: w})
			}
			sort.Slice(out, func(i, j int) bool {
				if out[i].Weight != out[j].Weight {
					return out[i].Weight > out[j].Weight
				}
				return out[i].To < out[j].To
			})
			s.succ[i] = out
		}
		if len(v.In) > 0 {
			in := make([]Edge, 0, len(v.In))
			for a, w := range v.In {
				in = append(in, Edge{From: a, To: name, Weight: w})
			}
			sort.Slice(in, func(i, j int) bool {
				if in[i].Weight != in[j].Weight {
					return in[i].Weight > in[j].Weight
				}
				return in[i].From < in[j].From
			})
			s.pred[i] = in
		}
	}
	return s
}

// Len reports the number of vertices in the snapshot.
func (s *Snapshot) Len() int { return len(s.names) }

// Edges reports the number of directed edges in the snapshot.
func (s *Snapshot) Edges() int { return s.edges }

// Learns reports the graph's learn counter at snapshot time.
func (s *Snapshot) Learns() uint64 { return s.learns }

// Names returns the vertex names in insertion order. The slice is shared
// and must not be modified.
func (s *Snapshot) Names() []string { return s.names }

// PickBase draws a base invocation proportionally to vertex weight, with
// arithmetic identical to the historical locked implementation: one
// insertion-order sum, one rng draw, one insertion-order subtraction scan.
func (s *Snapshot) PickBase(rng *rand.Rand) string {
	var total float64
	for _, w := range s.weights {
		total += w
	}
	if total == 0 {
		return ""
	}
	x := rng.Float64() * total
	for i, w := range s.weights {
		x -= w
		if x <= 0 {
			return s.names[i]
		}
	}
	return s.names[len(s.names)-1]
}

// Successors returns the out-edges of name sorted by descending weight then
// ascending name. The slice is the snapshot's own pre-sorted storage: it is
// shared across callers and must be treated as read-only.
func (s *Snapshot) Successors(name string) []Edge {
	i, ok := s.index[name]
	if !ok {
		return nil
	}
	return s.succ[i]
}

// Predecessors returns the in-edges of name sorted by descending weight then
// ascending producer name — the learned dependencies that historically ran
// before name. The slice is the snapshot's own pre-sorted storage: it is
// shared across callers and must be treated as read-only.
func (s *Snapshot) Predecessors(name string) []Edge {
	i, ok := s.index[name]
	if !ok {
		return nil
	}
	return s.pred[i]
}

// Walk performs the generation-time traversal over the snapshot with the
// exact draw sequence of the historical Graph.Walk: the stop draw is taken
// first on every step, and the selection draw only when successors exist
// with positive total weight.
func (s *Snapshot) Walk(rng *rand.Rand, from string, maxLen int, stopProb float64) []string {
	var path []string
	cur := from
	for len(path) < maxLen {
		if rng.Float64() < stopProb {
			break
		}
		succ := s.Successors(cur)
		if len(succ) == 0 {
			break
		}
		var total float64
		for _, e := range succ {
			total += e.Weight
		}
		if total <= 0 {
			break
		}
		x := rng.Float64() * total
		next := succ[len(succ)-1].To
		for _, e := range succ {
			x -= e.Weight
			if x <= 0 {
				next = e.To
				break
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}
