package relation

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// learnChain seeds a small graph with a deterministic edge structure.
func learnChain(g *Graph) {
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		g.AddVertex(n, 0.2)
	}
	g.Learn("a", "b")
	g.Learn("b", "c")
	g.Learn("c", "d")
	g.Learn("a", "c")
	g.Learn("d", "e")
}

// TestSnapshotIsStableUntilMutation: repeated reads return the identical
// published pointer; any mutation invalidates and the next read rebuilds.
func TestSnapshotIsStableUntilMutation(t *testing.T) {
	g := New()
	learnChain(g)
	s1 := g.Snapshot()
	if s2 := g.Snapshot(); s1 != s2 {
		t.Fatal("unmutated graph republished its snapshot")
	}
	g.Learn("e", "a")
	s3 := g.Snapshot()
	if s3 == s1 {
		t.Fatal("Learn did not invalidate the published snapshot")
	}
	if s3.Learns() != s1.Learns()+1 || s3.Edges() != s1.Edges()+1 {
		t.Fatalf("rebuilt snapshot stale: learns %d->%d edges %d->%d",
			s1.Learns(), s3.Learns(), s1.Edges(), s3.Edges())
	}
	g.Decay(0.5, 0.01)
	if s4 := g.Snapshot(); s4 == s3 {
		t.Fatal("Decay did not invalidate the published snapshot")
	}
	g.AddVertex("f", 0.3)
	if s5 := g.Snapshot(); s5.Len() != 6 {
		t.Fatalf("AddVertex not reflected: len = %d", s5.Len())
	}
}

// TestSnapshotMatchesGraphReads: every delegated read agrees with the
// snapshot view, and Successors copies while Snapshot.Successors shares.
func TestSnapshotMatchesGraphReads(t *testing.T) {
	g := New()
	learnChain(g)
	s := g.Snapshot()

	if s.Len() != g.Len() || s.Edges() != g.Edges() || s.Learns() != g.Learns() {
		t.Fatalf("snapshot counters diverge: %d/%d/%d vs %d/%d/%d",
			s.Len(), s.Edges(), s.Learns(), g.Len(), g.Edges(), g.Learns())
	}
	if !reflect.DeepEqual(s.Names(), g.Names()) {
		t.Fatalf("names diverge: %v vs %v", s.Names(), g.Names())
	}
	for _, n := range g.Names() {
		gs := g.Successors(n)
		ss := s.Successors(n)
		if len(gs) != len(ss) {
			t.Fatalf("successor count of %s diverges: %v vs %v", n, gs, ss)
		}
		for i := range gs {
			if gs[i] != ss[i] {
				t.Fatalf("successor %d of %s diverges: %+v vs %+v", i, n, gs[i], ss[i])
			}
		}
		if len(gs) > 0 {
			// Graph.Successors must hand back a private copy.
			gs[0].Weight = -1
			if s.Successors(n)[0].Weight == -1 {
				t.Fatal("Graph.Successors aliases snapshot storage")
			}
		}
	}

	// PickBase and Walk draw identically through either entry point.
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		if got, want := g.PickBase(r1), s.PickBase(r2); got != want {
			t.Fatalf("PickBase diverged at %d: %q vs %q", i, got, want)
		}
	}
	r1 = rand.New(rand.NewSource(7))
	r2 = rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		gw := g.Walk(r1, "a", 4, 0.2)
		sw := s.Walk(r2, "a", 4, 0.2)
		if !reflect.DeepEqual(gw, sw) {
			t.Fatalf("Walk diverged at %d: %v vs %v", i, gw, sw)
		}
	}
}

// TestLearnBufferOrdering: buffered ops apply in (device, sequence) order
// regardless of which buffer is drained first, matching a graph that ran
// the same ops synchronously in that order.
func TestLearnBufferOrdering(t *testing.T) {
	seed := func() *Graph {
		g := New()
		for _, n := range []string{"a", "b", "c", "d"} {
			g.AddVertex(n, 0.25)
		}
		return g
	}

	bufA := NewLearnBuffer("A1")
	bufB := NewLearnBuffer("B")
	// Interleave recording so drain order ≠ recording order.
	bufB.Learn("c", "d")
	bufA.Learn("a", "b")
	bufB.Learn("a", "d")
	bufA.Learn("b", "d")

	buffered := seed()
	if n := buffered.ApplyBuffered(bufB, bufA); n != 4 {
		t.Fatalf("applied %d ops, want 4", n)
	}
	if bufA.Len() != 0 || bufB.Len() != 0 {
		t.Fatal("buffers not drained")
	}

	reference := seed()
	// Sorted (device, seq) order: A1/0, A1/1, B/0, B/1.
	reference.Learn("a", "b")
	reference.Learn("b", "d")
	reference.Learn("c", "d")
	reference.Learn("a", "d")

	for _, a := range reference.Names() {
		for _, b := range reference.Names() {
			if got, want := buffered.EdgeWeight(a, b), reference.EdgeWeight(a, b); got != want {
				t.Fatalf("edge %s->%s: buffered %g, reference %g", a, b, got, want)
			}
		}
	}
	if buffered.Learns() != reference.Learns() {
		t.Fatalf("learn counters diverge: %d vs %d", buffered.Learns(), reference.Learns())
	}
}

// TestSnapshotConcurrentReadsAndMutations hammers the snapshot path from
// reader goroutines while a writer keeps learning and decaying; run under
// -race this is the lock-free publication proof.
func TestSnapshotConcurrentReadsAndMutations(t *testing.T) {
	g := New()
	learnChain(g)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := g.Snapshot()
				_ = s.PickBase(rng)
				_ = s.Walk(rng, "a", 3, 0.1)
				_ = s.Successors("b")
			}
		}(int64(r + 1))
	}
	buf := NewLearnBuffer("A1")
	for i := 0; i < 500; i++ {
		g.Learn("a", "b")
		buf.Learn("b", "c")
		if i%50 == 0 {
			g.Decay(0.9, 0.01)
			g.ApplyBuffered(buf)
		}
	}
	close(stop)
	wg.Wait()
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
