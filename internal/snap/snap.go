// Package snap holds the tiny primitives shared by every subsystem that
// participates in device snapshot/restore: a lock-free generation counter
// for dirty tracking and the per-subsystem checkpoint interface.
//
// It is a leaf package on purpose — vkernel, kasan, binder, hal, ebpf,
// drivers and device all import it, so it must not import any of them.
package snap

import "sync/atomic"

// Dirty is a generation counter embedded by snapshot-capable subsystems.
// Every mutating operation calls Touch; Device.Restore compares the
// generation recorded at checkpoint time against Gen() and skips the
// subsystem entirely when they match. Over-marking (bumping on an op that
// turned out not to mutate) costs a wasted restore; under-marking is a
// correctness bug, so mutation paths bump unconditionally.
type Dirty struct {
	gen atomic.Uint64
}

// Touch marks the subsystem dirty relative to any previously captured
// snapshot. Safe for concurrent use.
func (d *Dirty) Touch() { d.gen.Add(1) }

// Gen returns the current generation. Two equal readings with no Touch in
// between mean the subsystem state is unchanged.
func (d *Dirty) Gen() uint64 { return d.gen.Load() }

// Subsystem is the per-subsystem checkpoint/restore contract. Checkpoint
// deep-copies the live state into an opaque immutable value; Restore
// copies it back, leaving the receiver exactly as it was at checkpoint
// time. The state value is reused across many restores and must never be
// aliased mutably by either side.
//
// Export/Import are the portable counterpart: Export deep-copies the live
// state into a device-independent blob — exported fields only (it must
// survive a gob round-trip) and no pointers into the source device — or
// nil for stateless subsystems. Import re-materializes an exported blob
// onto the receiver, which must belong to a device of the same model, and
// marks the receiver dirty. Imported blobs are immutable by the same
// contract as checkpoint payloads: one blob may be imported into many
// twins, so Import must copy, never alias.
type Subsystem interface {
	Checkpoint() any
	Restore(any)
	Export() any
	Import(any)
	Gen() uint64
}
