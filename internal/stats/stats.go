// Package stats provides the statistical machinery the evaluation uses:
// the Mann-Whitney U test (the paper's significance test, §V-A), summary
// statistics, and time-series aggregation across repeated campaigns.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// MannWhitneyU computes the two-sided Mann-Whitney U test for independent
// samples a and b, returning the U statistic (of sample a) and the p-value
// from the normal approximation with tie correction. Samples smaller than 3
// return p = 1 (no power).
func MannWhitneyU(a, b []float64) (u float64, p float64) {
	n1, n2 := len(a), len(b)
	if n1 < 3 || n2 < 3 {
		return 0, 1
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks with tie groups.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of ranks i+1 .. j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u = u1

	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return u, 1 // all observations tied
	}
	// Continuity-corrected z.
	z := (math.Abs(u1-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	p = 2 * (1 - normCDF(z))
	if p > 1 {
		p = 1
	}
	return u, p
}

// normCDF is the standard normal CDF via erf.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// Significant reports whether the two samples differ at the α = 0.05 level
// under Mann-Whitney U (the paper labels non-significant groups).
func Significant(a, b []float64) bool {
	_, p := MannWhitneyU(a, b)
	return p < 0.05
}

// Series is one coverage-over-time curve: parallel virtual-time and value
// slices.
type Series struct {
	T []uint64
	V []float64
}

// At interpolates the series at virtual time t using the last sample at or
// before t (step interpolation, the natural reading of cumulative
// coverage). Before the first sample it returns 0.
func (s Series) At(t uint64) float64 {
	v := 0.0
	for i, st := range s.T {
		if st > t {
			break
		}
		v = s.V[i]
	}
	return v
}

// MeanSeries resamples several runs onto a common grid of n points spanning
// [0, maxT] and averages them — the paper's "average coverage at each
// timestamp" across 10 repetitions.
func MeanSeries(runs []Series, n int, maxT uint64) Series {
	if n <= 0 || len(runs) == 0 {
		return Series{}
	}
	out := Series{T: make([]uint64, n), V: make([]float64, n)}
	for i := 0; i < n; i++ {
		t := maxT * uint64(i+1) / uint64(n)
		out.T[i] = t
		var sum float64
		for _, r := range runs {
			sum += r.At(t)
		}
		out.V[i] = sum / float64(len(runs))
	}
	return out
}

// Finals extracts the final value of each run.
func Finals(runs []Series) []float64 {
	out := make([]float64, 0, len(runs))
	for _, r := range runs {
		if len(r.V) == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, r.V[len(r.V)-1])
	}
	return out
}
