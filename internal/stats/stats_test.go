package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummaryStatistics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %f", Mean(xs))
	}
	if !almost(StdDev(xs), 2.138, 0.001) {
		t.Fatalf("std = %f", StdDev(xs))
	}
	if Median(xs) != 4.5 {
		t.Fatalf("median = %f", Median(xs))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 || Median(nil) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestMannWhitneyKnownValues(t *testing.T) {
	// Two clearly separated samples: p must be small.
	a := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 9.5}
	u, p := MannWhitneyU(a, b)
	if u != 100 { // a ranks entirely above b: U1 = n1*n2
		t.Fatalf("u = %f, want 100", u)
	}
	if p > 0.001 {
		t.Fatalf("p = %f, want < 0.001", p)
	}
	if !Significant(a, b) {
		t.Fatal("separated samples not significant")
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	a := []float64{5, 5, 5, 5, 5}
	_, p := MannWhitneyU(a, a)
	if p < 0.99 {
		t.Fatalf("p = %f for all-tied samples, want 1", p)
	}
	if Significant(a, a) {
		t.Fatal("identical samples significant")
	}
}

func TestMannWhitneyOverlapping(t *testing.T) {
	a := []float64{1, 3, 5, 7, 9, 11}
	b := []float64{2, 4, 6, 8, 10, 12}
	_, p := MannWhitneyU(a, b)
	if p < 0.3 {
		t.Fatalf("interleaved samples p = %f, want large", p)
	}
}

func TestMannWhitneySmallSamples(t *testing.T) {
	if _, p := MannWhitneyU([]float64{1}, []float64{2, 3, 4}); p != 1 {
		t.Fatal("underpowered test should return p=1")
	}
}

// TestMannWhitneySymmetry: swapping the samples never changes the p-value.
func TestMannWhitneySymmetry(t *testing.T) {
	f := func(a, b []float64) bool {
		for _, v := range append(a, b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		_, p1 := MannWhitneyU(a, b)
		_, p2 := MannWhitneyU(b, a)
		return almost(p1, p2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAt(t *testing.T) {
	s := Series{T: []uint64{10, 20, 30}, V: []float64{1, 2, 3}}
	cases := map[uint64]float64{5: 0, 10: 1, 15: 1, 20: 2, 100: 3}
	for tt, want := range cases {
		if got := s.At(tt); got != want {
			t.Errorf("At(%d) = %f, want %f", tt, got, want)
		}
	}
}

func TestMeanSeries(t *testing.T) {
	runs := []Series{
		{T: []uint64{10, 20}, V: []float64{1, 3}},
		{T: []uint64{10, 20}, V: []float64{3, 5}},
	}
	m := MeanSeries(runs, 2, 20)
	if len(m.T) != 2 {
		t.Fatalf("points = %d", len(m.T))
	}
	if m.V[0] != 2 || m.V[1] != 4 {
		t.Fatalf("means = %v", m.V)
	}
	if got := MeanSeries(nil, 4, 10); len(got.T) != 0 {
		t.Fatal("empty runs should give empty series")
	}
}

func TestFinals(t *testing.T) {
	runs := []Series{
		{T: []uint64{1}, V: []float64{7}},
		{},
	}
	f := Finals(runs)
	if len(f) != 2 || f[0] != 7 || f[1] != 0 {
		t.Fatalf("finals = %v", f)
	}
}
