package vkernel

import (
	"fmt"

	"droidfuzz/internal/kasan"
	"droidfuzz/internal/kcov"
)

// Ctx is the per-syscall execution context handed to driver code. It carries
// the issuing process identity, the coverage and heap facilities, and the
// watchdog step budget for the current syscall.
type Ctx struct {
	k      *Kernel
	pid    int
	origin Origin
	steps  int
}

func (k *Kernel) newCtx(pid int, origin Origin) *Ctx {
	return &Ctx{k: k, pid: pid, origin: origin, steps: k.StepBudget}
}

// PID returns the issuing process id.
func (c *Ctx) PID() int { return c.pid }

// Origin returns the boundary side that issued the syscall.
func (c *Ctx) Origin() Origin { return c.origin }

// Kernel returns the owning kernel.
func (c *Ctx) Kernel() *Kernel { return c.k }

// Cover records a cover-point hit for (module, site); the analog of a
// compiler-inserted __sanitizer_cov_trace_pc call.
func (c *Ctx) Cover(module string, site uint32) {
	c.k.Cov.Hit(kcov.PC(module, site))
}

// Heap returns the KASAN-instrumented slab heap.
func (c *Ctx) Heap() *kasan.Heap { return c.k.Heap }

// Warn records a WARN_ON-style incident titled "WARNING in <site>". The
// kernel continues running; the harness decides whether to reboot.
func (c *Ctx) Warn(site, detail string) {
	c.k.recordCrash(Crash{
		Kind:   CrashWarning,
		Title:  "WARNING in " + site,
		Detail: detail,
	})
}

// Bug records a fatal BUG() incident and wedges the kernel.
func (c *Ctx) Bug(title, detail string) {
	c.k.recordCrash(Crash{Kind: CrashBUG, Title: "BUG: " + title, Detail: detail})
}

// Kasan records a KASAN report as a fatal incident and wedges the kernel.
func (c *Ctx) Kasan(r *kasan.Report) {
	c.k.recordCrash(Crash{Kind: CrashKASAN, Title: r.Title(), Detail: r.String()})
}

// CheckLoad performs a KASAN-checked load; on a memory error it records the
// fatal incident and returns nil data with false.
func (c *Ctx) CheckLoad(obj uint64, off, n int, site string) ([]byte, bool) {
	data, rep := c.k.Heap.Load(obj, off, n, site)
	if rep != nil {
		c.Kasan(rep)
		return nil, false
	}
	return data, true
}

// CheckStore performs a KASAN-checked store; on a memory error it records
// the fatal incident and returns false.
func (c *Ctx) CheckStore(obj uint64, off int, p []byte, site string) bool {
	if rep := c.k.Heap.Store(obj, off, p, site); rep != nil {
		c.Kasan(rep)
		return false
	}
	return true
}

// CheckFree performs a KASAN-checked free; on a memory error it records the
// fatal incident and returns false.
func (c *Ctx) CheckFree(obj uint64, site string) bool {
	if rep := c.k.Heap.Free(obj, site); rep != nil {
		c.Kasan(rep)
		return false
	}
	return true
}

// Step consumes one unit of the syscall's loop budget. When the budget is
// exhausted the soft-lockup watchdog fires: a fatal hang incident titled
// "INFO: task hung in <site>" is recorded and Step returns false; driver
// loops must then bail out. This models the paper's "Infinite Loop in
// driver" bug class without actually stalling the host.
func (c *Ctx) Step(site string) bool {
	c.steps--
	if c.steps > 0 {
		return true
	}
	if c.steps == 0 { // report exactly once per syscall
		c.k.recordCrash(Crash{
			Kind:   CrashHang,
			Title:  "INFO: task hung in " + site,
			Detail: fmt.Sprintf("watchdog: soft lockup in %s (budget %d exhausted)", site, c.k.StepBudget),
		})
	}
	return false
}
