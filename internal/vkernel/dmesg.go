package vkernel

import "fmt"

// The kernel keeps a dmesg-style ring buffer of console messages. Drivers
// log notable events through Ctx.Logf; crash recording appends the splat
// automatically. The broker ships the tail of the ring with crash reports,
// like the paper's harness recovering (sometimes corrupted) log messages
// from serial consoles.

// DmesgCap is the number of retained console lines.
const DmesgCap = 256

func (k *Kernel) appendDmesg(line string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.dmesg = append(k.dmesg, line)
	if len(k.dmesg) > DmesgCap {
		k.dmesg = k.dmesg[len(k.dmesg)-DmesgCap:]
	}
}

// Dmesg returns a copy of the retained console lines, oldest first.
func (k *Kernel) Dmesg() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, len(k.dmesg))
	copy(out, k.dmesg)
	return out
}

// DmesgTail returns the most recent n console lines.
func (k *Kernel) DmesgTail(n int) []string {
	all := k.Dmesg()
	if n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Logf appends a driver console message, prefixed with the issuing module,
// e.g. "tcpc0: entering DRP toggle".
func (c *Ctx) Logf(module, format string, args ...any) {
	c.k.appendDmesg(module + ": " + fmt.Sprintf(format, args...))
}
