package vkernel

import (
	"fmt"
	"strings"
	"testing"
)

func TestDmesgLogging(t *testing.T) {
	k, _ := newTestKernel(t)
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	// Driver warnings land in the ring with their title and detail.
	k.Ioctl(1, OriginNative, fd, 2, nil)
	lines := k.Dmesg()
	if len(lines) < 2 {
		t.Fatalf("dmesg = %v", lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "WARNING in echo_warn_site") {
		t.Fatalf("warning missing from dmesg:\n%s", joined)
	}
	if !strings.Contains(joined, "test warning") {
		t.Fatalf("detail missing from dmesg:\n%s", joined)
	}
}

func TestDmesgRingBounded(t *testing.T) {
	k, _ := newTestKernel(t)
	for i := 0; i < DmesgCap*2; i++ {
		k.appendDmesg(fmt.Sprintf("line %d", i))
	}
	lines := k.Dmesg()
	if len(lines) != DmesgCap {
		t.Fatalf("ring = %d, want %d", len(lines), DmesgCap)
	}
	// Oldest lines were evicted.
	if lines[0] != fmt.Sprintf("line %d", DmesgCap) {
		t.Fatalf("head = %q", lines[0])
	}
}

func TestDmesgTail(t *testing.T) {
	k, _ := newTestKernel(t)
	for i := 0; i < 10; i++ {
		k.appendDmesg(fmt.Sprintf("l%d", i))
	}
	tail := k.DmesgTail(3)
	if len(tail) != 3 || tail[2] != "l9" {
		t.Fatalf("tail = %v", tail)
	}
	if got := k.DmesgTail(100); len(got) != 10 {
		t.Fatalf("oversized tail = %d", len(got))
	}
}

func TestCtxLogf(t *testing.T) {
	k, _ := newTestKernel(t)
	ctx := k.newCtx(1, OriginNative)
	ctx.Logf("echo0", "value=%d", 42)
	lines := k.Dmesg()
	if len(lines) != 1 || lines[0] != "echo0: value=42" {
		t.Fatalf("dmesg = %v", lines)
	}
}
