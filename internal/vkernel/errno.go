package vkernel

import "errors"

// Errno values returned by the virtual kernel's syscall surface. They mirror
// the Linux error numbers the real drivers would return, so generated
// programs observe realistic failure semantics.
var (
	EPERM  = errors.New("EPERM: operation not permitted")
	EACCES = errors.New("EACCES: permission denied")
	ENOENT = errors.New("ENOENT: no such file or directory")
	EIO    = errors.New("EIO: input/output error")
	EBADF  = errors.New("EBADF: bad file descriptor")
	ENOMEM = errors.New("ENOMEM: out of memory")
	EFAULT = errors.New("EFAULT: bad address")
	EBUSY  = errors.New("EBUSY: device or resource busy")
	ENODEV = errors.New("ENODEV: no such device")
	EINVAL = errors.New("EINVAL: invalid argument")
	ENOTTY = errors.New("ENOTTY: inappropriate ioctl for device")
	ENOSPC = errors.New("ENOSPC: no space left on device")
	EAGAIN = errors.New("EAGAIN: try again")
	ENOSYS = errors.New("ENOSYS: function not implemented")
)

// ErrnoName returns the short symbolic name ("EINVAL") for a kernel error,
// or "OK" for nil and "ERR" for foreign errors.
func ErrnoName(err error) string {
	switch {
	case err == nil:
		return "OK"
	case errors.Is(err, EPERM):
		return "EPERM"
	case errors.Is(err, EACCES):
		return "EACCES"
	case errors.Is(err, ENOENT):
		return "ENOENT"
	case errors.Is(err, EIO):
		return "EIO"
	case errors.Is(err, EBADF):
		return "EBADF"
	case errors.Is(err, ENOMEM):
		return "ENOMEM"
	case errors.Is(err, EFAULT):
		return "EFAULT"
	case errors.Is(err, EBUSY):
		return "EBUSY"
	case errors.Is(err, ENODEV):
		return "ENODEV"
	case errors.Is(err, EINVAL):
		return "EINVAL"
	case errors.Is(err, ENOTTY):
		return "ENOTTY"
	case errors.Is(err, ENOSPC):
		return "ENOSPC"
	case errors.Is(err, EAGAIN):
		return "EAGAIN"
	case errors.Is(err, ENOSYS):
		return "ENOSYS"
	default:
		return "ERR"
	}
}
