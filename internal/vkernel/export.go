package vkernel

// Portable checkpoint export/import. The exported blob mirrors kernelState
// with exported fields so it survives a gob round-trip; like the checkpoint
// payload it is immutable once built (one blob may seed many clone twins).

// KernelExport is the Kernel's portable checkpoint blob.
type KernelExport struct {
	StepBudget int
}

// Export implements snap.Subsystem.
func (k *Kernel) Export() any {
	st := k.Checkpoint().(*kernelState)
	return &KernelExport{StepBudget: st.stepBudget}
}

// Import implements snap.Subsystem. The device tree, tracer, and syscall
// gate are boot-time wiring and survive an import unchanged, exactly as
// they survive a Restore — so a gated broker stays gated after receiving a
// checkpoint.
func (k *Kernel) Import(b any) {
	e := b.(*KernelExport)
	k.Restore(&kernelState{stepBudget: e.StepBudget})
	k.Touch()
}
