// Package vkernel implements the virtual Linux kernel substrate DroidFuzz is
// evaluated against. It models the pieces the fuzzer interacts with on a
// real rooted device: a syscall surface (open/close/ioctl/read/write/mmap),
// a /dev registry of stateful character-device drivers, kcov-style coverage,
// a KASAN-instrumented slab heap, WARN/BUG/hang crash accounting, a
// lockdep-like locking validator, and syscall tracepoints that the eBPF
// layer attaches to.
//
// The kernel is single-machine and in-process, but its observable contract —
// errno semantics, coverage streams, crash splats, and per-origin syscall
// traces — matches what the paper's harness consumes over ADB.
package vkernel

import (
	"fmt"
	"sort"
	"sync"

	"droidfuzz/internal/kasan"
	"droidfuzz/internal/kcov"
	"droidfuzz/internal/snap"
)

// Origin identifies which side of the HAL boundary issued a syscall. The
// cross-boundary feedback mechanism (paper §IV-D) keys on OriginHAL events.
type Origin int

const (
	// OriginNative marks syscalls issued directly by the native executor.
	OriginNative Origin = iota
	// OriginHAL marks syscalls issued by a HAL service process.
	OriginHAL
)

// String names the origin.
func (o Origin) String() string {
	if o == OriginHAL {
		return "hal"
	}
	return "native"
}

// Event is one syscall-entry trace record, as an attached eBPF program sees
// it: sequence number, issuing process and origin, syscall name, the device
// path involved, the critical argument (ioctl request, mmap length, ...),
// and the errno outcome.
type Event struct {
	Seq    uint64
	PID    int
	Origin Origin
	NR     string // syscall name: open, close, ioctl, read, write, mmap
	Path   string // device path of the fd (or the open path)
	Arg    uint64 // critical argument
	Errno  string
}

// TraceFunc receives syscall events; attached by the ebpf package.
type TraceFunc func(Event)

// CrashKind classifies kernel-side incidents.
type CrashKind int

const (
	// CrashWarning is a WARN_ON-style recoverable logic error.
	CrashWarning CrashKind = iota
	// CrashBUG is a fatal BUG() that wedges the kernel.
	CrashBUG
	// CrashKASAN is a memory error detected by the KASAN heap; fatal.
	CrashKASAN
	// CrashHang is a watchdog-detected stall (infinite loop); fatal.
	CrashHang
)

// String names the crash kind as the console log prefix would.
func (k CrashKind) String() string {
	switch k {
	case CrashWarning:
		return "WARNING"
	case CrashBUG:
		return "BUG"
	case CrashKASAN:
		return "KASAN"
	case CrashHang:
		return "HANG"
	default:
		return fmt.Sprintf("CrashKind(%d)", int(k))
	}
}

// Crash is one recorded kernel incident.
type Crash struct {
	Kind   CrashKind
	Title  string // dedup title, e.g. "WARNING in rt1711_i2c_probe"
	Detail string // splat body
}

// Driver is a character-device driver registered under a /dev path.
type Driver interface {
	// Name returns the driver module name (used for cover-point PCs).
	Name() string
	// Open creates a per-fd connection. The driver may refuse (EBUSY...).
	Open(ctx *Ctx) (Conn, error)
}

// Conn is an open file's driver-side state.
type Conn interface {
	Ioctl(ctx *Ctx, req uint64, arg []byte) (uint64, []byte, error)
	Read(ctx *Ctx, n int) ([]byte, error)
	Write(ctx *Ctx, p []byte) (int, error)
	Mmap(ctx *Ctx, length uint64) (uint64, error)
	Close(ctx *Ctx) error
}

// BaseConn provides default implementations returning the canonical errnos
// for unsupported file operations; drivers embed it.
type BaseConn struct{}

// Ioctl returns ENOTTY.
func (BaseConn) Ioctl(*Ctx, uint64, []byte) (uint64, []byte, error) { return 0, nil, ENOTTY }

// Read returns EINVAL.
func (BaseConn) Read(*Ctx, int) ([]byte, error) { return nil, EINVAL }

// Write returns EINVAL.
func (BaseConn) Write(*Ctx, []byte) (int, error) { return 0, EINVAL }

// Mmap returns ENODEV.
func (BaseConn) Mmap(*Ctx, uint64) (uint64, error) { return 0, ENODEV }

// Close succeeds.
func (BaseConn) Close(*Ctx) error { return nil }

type openFile struct {
	fd   int
	pid  int
	path string
	conn Conn
	// touch marks the owning driver dirty; resolved once at open so the
	// fd-op hot path pays one indirect call, not a type assertion.
	touch func()
}

// Kernel is one virtual kernel instance. All methods are safe for concurrent
// use; the native executor and HAL service goroutines enter it concurrently,
// as on a real SMP device.
type Kernel struct {
	snap.Dirty

	mu      sync.Mutex
	devs    map[string]Driver //droidvet:checkpoint ephemeral boot wiring; drivers checkpoint themselves as subsystems
	params  map[string]*Param //droidvet:checkpoint ephemeral registry wiring; knob values are the Knobs subsystem's state
	files   map[int]*openFile
	nextFD  int
	tracer  TraceFunc //droidvet:checkpoint ephemeral harness callback, not device state
	seq     uint64
	crashes []Crash
	wedged  bool
	sysCnt  uint64
	dmesg   []string

	// Cov is the kcov collector; the broker brackets executions with
	// Enable/Reset and reads the trace out after each program.
	Cov *kcov.Collector
	// Heap is the KASAN-instrumented slab heap drivers allocate from.
	Heap *kasan.Heap

	// lockdep state for the locking validator (see lockdep.go).
	lockSeq map[string]int

	// gate, when non-nil, vetoes syscalls before dispatch (used by the
	// DROIDFUZZ-D ioctl-only variant, paper §V-C2). Vetoed syscalls fail
	// with EPERM and are still traced.
	//droidvet:checkpoint ephemeral variant configuration, fixed for a campaign
	gate func(origin Origin, nr string) bool

	// StepBudget bounds driver-internal loop iterations per syscall before
	// the watchdog declares a stall. Tests may lower it.
	StepBudget int
}

// DefaultStepBudget is the per-syscall driver loop budget before the
// soft-lockup watchdog fires.
const DefaultStepBudget = 1 << 16

// New returns an empty kernel with fresh coverage and heap state.
func New() *Kernel {
	return &Kernel{
		devs:       make(map[string]Driver),
		files:      make(map[int]*openFile),
		nextFD:     3, // 0-2 reserved, as on Linux
		Cov:        kcov.NewCollector(0),
		Heap:       kasan.NewHeap(0),
		lockSeq:    make(map[string]int),
		StepBudget: DefaultStepBudget,
	}
}

// RegisterDevice exposes drv under a /dev path. Duplicate registration
// panics: device trees are static per model.
func (k *Kernel) RegisterDevice(path string, drv Driver) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.devs[path]; dup {
		panic(fmt.Sprintf("vkernel: duplicate device %q", path))
	}
	k.devs[path] = drv
}

// DevicePaths returns the sorted registered /dev paths.
func (k *Kernel) DevicePaths() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.devs))
	for p := range k.devs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SetTracer installs the syscall tracepoint sink (one at a time, like a
// single attached eBPF dispatcher; the ebpf package fans out internally).
func (k *Kernel) SetTracer(f TraceFunc) {
	k.mu.Lock()
	k.tracer = f
	k.mu.Unlock()
}

func (k *Kernel) trace(pid int, origin Origin, nr, path string, arg uint64, err error) {
	k.mu.Lock()
	k.seq++
	ev := Event{
		Seq: k.seq, PID: pid, Origin: origin, NR: nr,
		Path: path, Arg: arg, Errno: ErrnoName(err),
	}
	t := k.tracer
	k.sysCnt++
	k.mu.Unlock()
	k.Touch() // every traced syscall advances seq/sysCnt
	if t != nil {
		t(ev)
	}
}

// SetSyscallGate installs a veto function consulted before every syscall
// dispatch; a false return fails the call with EPERM. Pass nil to remove.
func (k *Kernel) SetSyscallGate(gate func(origin Origin, nr string) bool) {
	k.mu.Lock()
	k.gate = gate
	k.mu.Unlock()
}

func (k *Kernel) gated(origin Origin, nr string) bool {
	k.mu.Lock()
	g := k.gate
	k.mu.Unlock()
	return g != nil && !g(origin, nr)
}

// SyscallCount reports the number of syscalls serviced since boot; the
// harness uses it as a virtual-time clock.
func (k *Kernel) SyscallCount() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.sysCnt
}

// Wedged reports whether a fatal incident (BUG/KASAN/hang) halted the
// kernel; further syscalls fail with EIO until the device reboots.
func (k *Kernel) Wedged() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.wedged
}

// Crashes returns all recorded incidents since boot, oldest first.
func (k *Kernel) Crashes() []Crash {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]Crash, len(k.crashes))
	copy(out, k.crashes)
	return out
}

// TakeCrashes returns and clears recorded incidents. The broker drains this
// after every program execution.
func (k *Kernel) TakeCrashes() []Crash {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := k.crashes
	k.crashes = nil
	return out
}

func (k *Kernel) recordCrash(c Crash) {
	k.mu.Lock()
	k.crashes = append(k.crashes, c)
	if c.Kind != CrashWarning {
		k.wedged = true
	}
	k.dmesg = append(k.dmesg, c.Title)
	if c.Detail != "" {
		k.dmesg = append(k.dmesg, c.Detail)
	}
	if len(k.dmesg) > DmesgCap {
		k.dmesg = k.dmesg[len(k.dmesg)-DmesgCap:]
	}
	k.mu.Unlock()
	k.Touch()
}

func (k *Kernel) isWedged() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.wedged
}

// Open opens a registered device path and returns a new fd.
func (k *Kernel) Open(pid int, origin Origin, path string, flags uint64) (int, error) {
	fd, err := k.open(pid, origin, path, flags)
	k.trace(pid, origin, "open", path, flags, err)
	return fd, err
}

func (k *Kernel) open(pid int, origin Origin, path string, flags uint64) (int, error) {
	if k.isWedged() {
		return -1, EIO
	}
	if k.gated(origin, "open") {
		return -1, EPERM
	}
	k.mu.Lock()
	drv, ok := k.devs[path]
	k.mu.Unlock()
	if !ok {
		// Fall through to the sysfs/param namespace: attributes are plain
		// files with no driver behind them.
		if p, isParam := k.lookupParam(path); isParam {
			k.mu.Lock()
			fd := k.nextFD
			k.nextFD++
			k.files[fd] = &openFile{fd: fd, pid: pid, path: path,
				conn: &paramConn{p: p}, touch: func() {}}
			k.mu.Unlock()
			return fd, nil
		}
		return -1, ENOENT
	}
	// Mark the driver dirty before Open runs: Open itself may mutate
	// shared driver state (e.g. the TCPC open count).
	touch := func() {}
	if t, ok := drv.(interface{ Touch() }); ok {
		touch = t.Touch
		touch()
	}
	ctx := k.newCtx(pid, origin)
	conn, err := drv.Open(ctx)
	if err != nil {
		return -1, err
	}
	k.mu.Lock()
	fd := k.nextFD
	k.nextFD++
	k.files[fd] = &openFile{fd: fd, pid: pid, path: path, conn: conn, touch: touch}
	k.mu.Unlock()
	return fd, nil
}

func (k *Kernel) lookup(fd int) (*openFile, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	f, ok := k.files[fd]
	if !ok {
		return nil, EBADF
	}
	return f, nil
}

// Close releases the fd.
func (k *Kernel) Close(pid int, origin Origin, fd int) error {
	err := k.close(pid, origin, fd)
	k.trace(pid, origin, "close", k.fdPath(fd), uint64(fd), err)
	return err
}

func (k *Kernel) fdPath(fd int) string {
	k.mu.Lock()
	defer k.mu.Unlock()
	if f, ok := k.files[fd]; ok {
		return f.path
	}
	return ""
}

func (k *Kernel) close(pid int, origin Origin, fd int) error {
	if k.isWedged() {
		return EIO
	}
	if k.gated(origin, "close") {
		return EPERM
	}
	k.mu.Lock()
	f, ok := k.files[fd]
	if ok {
		delete(k.files, fd)
	}
	k.mu.Unlock()
	if !ok {
		return EBADF
	}
	f.touch() // Close may mutate shared driver state
	return f.conn.Close(k.newCtx(pid, origin))
}

// Ioctl issues a device ioctl; returns the driver's scalar result and
// optional out-buffer.
func (k *Kernel) Ioctl(pid int, origin Origin, fd int, req uint64, arg []byte) (uint64, []byte, error) {
	path := k.fdPath(fd)
	ret, out, err := k.ioctl(pid, origin, fd, req, arg)
	k.trace(pid, origin, "ioctl", path, req, err)
	return ret, out, err
}

func (k *Kernel) ioctl(pid int, origin Origin, fd int, req uint64, arg []byte) (uint64, []byte, error) {
	if k.isWedged() {
		return 0, nil, EIO
	}
	if k.gated(origin, "ioctl") {
		return 0, nil, EPERM
	}
	f, err := k.lookup(fd)
	if err != nil {
		return 0, nil, err
	}
	f.touch()
	return f.conn.Ioctl(k.newCtx(pid, origin), req, arg)
}

// Read reads up to n bytes from the device.
func (k *Kernel) Read(pid int, origin Origin, fd int, n int) ([]byte, error) {
	path := k.fdPath(fd)
	data, err := k.read(pid, origin, fd, n)
	k.trace(pid, origin, "read", path, uint64(n), err)
	return data, err
}

func (k *Kernel) read(pid int, origin Origin, fd int, n int) ([]byte, error) {
	if k.isWedged() {
		return nil, EIO
	}
	if k.gated(origin, "read") {
		return nil, EPERM
	}
	if n < 0 {
		return nil, EINVAL
	}
	f, err := k.lookup(fd)
	if err != nil {
		return nil, err
	}
	f.touch()
	return f.conn.Read(k.newCtx(pid, origin), n)
}

// Write writes p to the device.
func (k *Kernel) Write(pid int, origin Origin, fd int, p []byte) (int, error) {
	path := k.fdPath(fd)
	n, err := k.write(pid, origin, fd, p)
	k.trace(pid, origin, "write", path, uint64(len(p)), err)
	return n, err
}

func (k *Kernel) write(pid int, origin Origin, fd int, p []byte) (int, error) {
	if k.isWedged() {
		return 0, EIO
	}
	if k.gated(origin, "write") {
		return 0, EPERM
	}
	f, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	f.touch()
	return f.conn.Write(k.newCtx(pid, origin), p)
}

// Mmap maps device memory, returning an opaque mapping cookie.
func (k *Kernel) Mmap(pid int, origin Origin, fd int, length uint64) (uint64, error) {
	path := k.fdPath(fd)
	cookie, err := k.mmap(pid, origin, fd, length)
	k.trace(pid, origin, "mmap", path, length, err)
	return cookie, err
}

func (k *Kernel) mmap(pid int, origin Origin, fd int, length uint64) (uint64, error) {
	if k.isWedged() {
		return 0, EIO
	}
	if k.gated(origin, "mmap") {
		return 0, EPERM
	}
	f, err := k.lookup(fd)
	if err != nil {
		return 0, err
	}
	f.touch()
	return f.conn.Mmap(k.newCtx(pid, origin), length)
}

// OpenFDs reports the number of currently open files (leak diagnostics).
func (k *Kernel) OpenFDs() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.files)
}
