package vkernel

import "fmt"

// MaxLockdepSubclasses mirrors the Linux lockdep limit
// (MAX_LOCKDEP_SUBCLASSES == 8): acquiring a lock with a subclass at or
// beyond the limit triggers "BUG: looking up invalid subclass: N" — the
// Table II bug №3 class.
const MaxLockdepSubclasses = 8

// LockAcquire models a lockdep-validated nested lock acquisition. Drivers
// call it with a lock class name and a nesting subclass; a user-influenced
// subclass past the limit reproduces the invalid-subclass BUG. Valid
// acquisitions simply record coverage-relevant bookkeeping.
func (k *Kernel) LockAcquire(ctx *Ctx, class string, subclass uint64) error {
	if subclass >= MaxLockdepSubclasses {
		ctx.Bug(
			fmt.Sprintf("looking up invalid subclass: %d", subclass),
			fmt.Sprintf("lockdep: class %q acquired with subclass %d >= MAX_LOCKDEP_SUBCLASSES (%d)",
				class, subclass, MaxLockdepSubclasses),
		)
		return EINVAL
	}
	k.mu.Lock()
	k.lockSeq[class]++
	k.mu.Unlock()
	return nil
}

// LockAcquisitions reports how many times the given lock class was taken
// since boot (test observability).
func (k *Kernel) LockAcquisitions(class string) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.lockSeq[class]
}
