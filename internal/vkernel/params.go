package vkernel

import (
	"fmt"
	"sort"
	"strings"
)

// Virtual sysfs/module-param surface. Real vendor kernels expose runtime
// knobs as small files under /sys/module/<mod>/parameters/ and sysfs device
// attributes; writing them flips driver behavior without any ioctl. The
// virtual kernel models that surface as a second path namespace next to the
// /dev registry: a registered Param is opened, read, and written through the
// ordinary syscall table (open/read/write/close), so every access is traced,
// gated, and counted exactly like a device syscall — an ioctl-only gate
// blocks the write path and with it every knob flip, just as on a real
// device a fuzzer confined to ioctls can never reach sysfs.
//
// Params carry Unix permission bits: mode 0644 attributes accept writes,
// 0444 attributes refuse them with EACCES. The value crosses the file
// boundary in its text form (trailing newline on read, tolerated on write),
// matching kernel param_set_*/param_get_* semantics.

// Param is one virtual sysfs attribute / module parameter.
type Param struct {
	// Path is the full sysfs path, e.g.
	// "/sys/module/tcpc/parameters/pd_compliance".
	Path string
	// Mode holds the Unix permission bits; only the write bits are
	// consulted (0200 owner-writable marks the attribute writable).
	Mode uint32
	// Load renders the current value in its text form (no newline).
	Load func() string
	// Store parses and applies a new value. It runs only for writable
	// attributes and receives the trimmed text. A nil Store makes the
	// attribute read-only regardless of Mode.
	Store func(ctx *Ctx, val string) error
}

// Writable reports whether the attribute accepts writes.
func (p *Param) Writable() bool { return p.Mode&0o200 != 0 && p.Store != nil }

// RegisterParam exposes a sysfs attribute under its path. Duplicate
// registration — including a collision with a /dev node — panics: the
// parameter tree is static per model, like the device tree.
func (k *Kernel) RegisterParam(p Param) {
	if p.Path == "" || p.Load == nil {
		panic("vkernel: param needs a path and a Load func")
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.devs[p.Path]; dup {
		panic(fmt.Sprintf("vkernel: param path %q collides with a device", p.Path))
	}
	if k.params == nil {
		k.params = make(map[string]*Param)
	}
	if _, dup := k.params[p.Path]; dup {
		panic(fmt.Sprintf("vkernel: duplicate param %q", p.Path))
	}
	cp := p
	k.params[p.Path] = &cp
}

// ParamPaths returns the sorted registered sysfs paths.
func (k *Kernel) ParamPaths() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.params))
	for p := range k.params {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ParamMode returns the permission bits of a registered param path and true,
// or 0 and false for an unknown path.
func (k *Kernel) ParamMode(path string) (uint32, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.params[path]
	if !ok {
		return 0, false
	}
	return p.Mode, true
}

// lookupParam resolves a path in the param namespace.
func (k *Kernel) lookupParam(path string) (*Param, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.params[path]
	return p, ok
}

// paramConn is the per-fd state of an open sysfs attribute. Reads snapshot
// the value once at open (sysfs show semantics: one fresh render per open,
// stable across partial reads); writes go straight to Store.
type paramConn struct {
	BaseConn
	p    *Param
	text []byte // rendered value + newline, consumed by sequential reads
	off  int
}

func (c *paramConn) Read(ctx *Ctx, n int) ([]byte, error) {
	if n < 0 {
		return nil, EINVAL
	}
	if c.text == nil {
		c.text = []byte(c.p.Load() + "\n")
	}
	if c.off >= len(c.text) {
		return nil, nil // EOF
	}
	end := c.off + n
	if end > len(c.text) {
		end = len(c.text)
	}
	out := make([]byte, end-c.off)
	copy(out, c.text[c.off:end])
	c.off = end
	return out, nil
}

func (c *paramConn) Write(ctx *Ctx, p []byte) (int, error) {
	if !c.p.Writable() {
		return 0, EACCES
	}
	val := strings.TrimSpace(string(p))
	if err := c.p.Store(ctx, val); err != nil {
		return 0, err
	}
	c.text = nil // next read re-renders
	c.off = 0
	return len(p), nil
}
