package vkernel

// Kernel checkpoint/restore. The device tree (devs), installed tracer, and
// syscall gate survive a restore unchanged — they are boot-time wiring, not
// runtime state — so restoring a kernel leaves the same *Kernel usable by
// everything that captured a pointer to it. Everything a campaign mutates
// (fd table, trace sequence, crash/dmesg buffers, lockdep counts, coverage)
// is wound back to its post-boot value.

// kernelState is the Kernel's checkpoint payload. Boot issues no syscalls,
// so pristine state is almost entirely implied by zero values; only the
// (test-tunable) step budget needs capturing.
type kernelState struct {
	stepBudget int
}

// Checkpoint implements snap.Subsystem.
func (k *Kernel) Checkpoint() any {
	k.mu.Lock()
	defer k.mu.Unlock()
	return &kernelState{stepBudget: k.StepBudget}
}

// Restore implements snap.Subsystem. It drops every open fd without running
// driver Close paths — driver state is restored separately by its own
// subsystem, so running Close against about-to-be-overwritten state would
// only corrupt the restore.
func (k *Kernel) Restore(s any) {
	st := s.(*kernelState)
	k.mu.Lock()
	clear(k.files)
	k.nextFD = 3
	k.seq = 0
	k.sysCnt = 0
	k.crashes = nil
	k.wedged = false
	k.dmesg = nil
	clear(k.lockSeq)
	k.StepBudget = st.stepBudget
	k.mu.Unlock()
	// A fresh boot builds a disabled, empty collector; Reset+Disable is
	// observationally identical and keeps the 256 KiB trace buffer.
	k.Cov.Reset()
	k.Cov.Disable()
}
