package vkernel

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// echoDriver is a minimal driver for kernel-surface tests. Like the real
// driver families it guards its shared state: the kernel dispatches Open
// concurrently.
type echoDriver struct {
	mu     sync.Mutex
	opens  int
	refuse bool
}

func (d *echoDriver) Name() string { return "echo" }

func (d *echoDriver) Open(ctx *Ctx) (Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.refuse {
		return nil, EBUSY
	}
	d.opens++
	ctx.Cover("echo", 1)
	return &echoConn{d: d}, nil
}

type echoConn struct {
	BaseConn
	d    *echoDriver
	last []byte
}

func (c *echoConn) Ioctl(ctx *Ctx, req uint64, arg []byte) (uint64, []byte, error) {
	ctx.Cover("echo", 2)
	switch req {
	case 1:
		return uint64(len(arg)), append([]byte(nil), arg...), nil
	case 2:
		ctx.Warn("echo_warn_site", "test warning")
		return 0, nil, EIO
	case 3:
		ctx.Bug("echo exploded", "test bug")
		return 0, nil, EIO
	case 4:
		for {
			if !ctx.Step("echo_spin") {
				return 0, nil, EIO
			}
		}
	case 5:
		return 0, nil, ctx.Kernel().LockAcquire(ctx, "echo_lock", ArgU64test(arg))
	}
	return 0, nil, ENOTTY
}

func (c *echoConn) Write(ctx *Ctx, p []byte) (int, error) {
	c.last = append(c.last[:0], p...)
	return len(p), nil
}

func (c *echoConn) Read(ctx *Ctx, n int) ([]byte, error) {
	if n > len(c.last) {
		n = len(c.last)
	}
	return c.last[:n], nil
}

// ArgU64test decodes the first LE u64 of a payload (mirrors drivers.ArgU64
// without importing it, to avoid a cycle).
func ArgU64test(arg []byte) uint64 {
	var v uint64
	for i := 0; i < 8 && i < len(arg); i++ {
		v |= uint64(arg[i]) << (8 * i)
	}
	return v
}

func newTestKernel(t *testing.T) (*Kernel, *echoDriver) {
	t.Helper()
	k := New()
	d := &echoDriver{}
	k.RegisterDevice("/dev/echo0", d)
	return k, d
}

func TestOpenCloseLifecycle(t *testing.T) {
	k, d := newTestKernel(t)
	fd, err := k.Open(1, OriginNative, "/dev/echo0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fd < 3 {
		t.Fatalf("fd = %d, want >= 3", fd)
	}
	if d.opens != 1 || k.OpenFDs() != 1 {
		t.Fatal("bookkeeping wrong")
	}
	if err := k.Close(1, OriginNative, fd); err != nil {
		t.Fatal(err)
	}
	if k.OpenFDs() != 0 {
		t.Fatal("fd leaked")
	}
	if err := k.Close(1, OriginNative, fd); !errors.Is(err, EBADF) {
		t.Fatalf("double close err = %v, want EBADF", err)
	}
}

func TestOpenErrors(t *testing.T) {
	k, d := newTestKernel(t)
	if _, err := k.Open(1, OriginNative, "/dev/nope", 0); !errors.Is(err, ENOENT) {
		t.Fatalf("err = %v, want ENOENT", err)
	}
	d.refuse = true
	if _, err := k.Open(1, OriginNative, "/dev/echo0", 0); !errors.Is(err, EBUSY) {
		t.Fatalf("err = %v, want EBUSY", err)
	}
}

func TestIoctlReadWrite(t *testing.T) {
	k, _ := newTestKernel(t)
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	ret, out, err := k.Ioctl(1, OriginNative, fd, 1, []byte{1, 2, 3})
	if err != nil || ret != 3 || len(out) != 3 {
		t.Fatalf("ioctl = %d/%v/%v", ret, out, err)
	}
	if _, _, err := k.Ioctl(1, OriginNative, 999, 1, nil); !errors.Is(err, EBADF) {
		t.Fatal("bad fd accepted")
	}
	n, err := k.Write(1, OriginNative, fd, []byte("hello"))
	if err != nil || n != 5 {
		t.Fatalf("write = %d/%v", n, err)
	}
	data, err := k.Read(1, OriginNative, fd, 5)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read = %q/%v", data, err)
	}
	if _, err := k.Read(1, OriginNative, fd, -1); !errors.Is(err, EINVAL) {
		t.Fatal("negative read accepted")
	}
}

func TestTraceEventsOrderedAndComplete(t *testing.T) {
	k, _ := newTestKernel(t)
	var evs []Event
	k.SetTracer(func(ev Event) { evs = append(evs, ev) })
	fd, _ := k.Open(7, OriginHAL, "/dev/echo0", 0)
	k.Ioctl(7, OriginHAL, fd, 1, nil)
	k.Close(7, OriginHAL, fd)
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].NR != "open" || evs[1].NR != "ioctl" || evs[2].NR != "close" {
		t.Fatalf("order wrong: %v", evs)
	}
	if evs[1].Arg != 1 || evs[1].Path != "/dev/echo0" || evs[1].Origin != OriginHAL {
		t.Fatalf("ioctl event wrong: %+v", evs[1])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("seq not increasing")
		}
	}
}

func TestWarningDoesNotWedge(t *testing.T) {
	k, _ := newTestKernel(t)
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	k.Ioctl(1, OriginNative, fd, 2, nil)
	if k.Wedged() {
		t.Fatal("warning wedged the kernel")
	}
	crashes := k.TakeCrashes()
	if len(crashes) != 1 || crashes[0].Kind != CrashWarning {
		t.Fatalf("crashes = %+v", crashes)
	}
	if crashes[0].Title != "WARNING in echo_warn_site" {
		t.Fatalf("title = %q", crashes[0].Title)
	}
	if len(k.TakeCrashes()) != 0 {
		t.Fatal("take did not drain")
	}
}

func TestBugWedges(t *testing.T) {
	k, _ := newTestKernel(t)
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	k.Ioctl(1, OriginNative, fd, 3, nil)
	if !k.Wedged() {
		t.Fatal("BUG did not wedge")
	}
	// All further syscalls fail with EIO.
	if _, err := k.Open(1, OriginNative, "/dev/echo0", 0); !errors.Is(err, EIO) {
		t.Fatalf("post-wedge open err = %v", err)
	}
	if _, _, err := k.Ioctl(1, OriginNative, fd, 1, nil); !errors.Is(err, EIO) {
		t.Fatalf("post-wedge ioctl err = %v", err)
	}
}

func TestWatchdogCatchesSpin(t *testing.T) {
	k, _ := newTestKernel(t)
	k.StepBudget = 100
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	_, _, err := k.Ioctl(1, OriginNative, fd, 4, nil)
	if !errors.Is(err, EIO) {
		t.Fatalf("err = %v", err)
	}
	if !k.Wedged() {
		t.Fatal("hang did not wedge")
	}
	crashes := k.Crashes()
	if len(crashes) != 1 || crashes[0].Kind != CrashHang {
		t.Fatalf("crashes = %+v", crashes)
	}
	if !strings.Contains(crashes[0].Title, "echo_spin") {
		t.Fatalf("title = %q", crashes[0].Title)
	}
}

func TestLockdepSubclassBug(t *testing.T) {
	k, _ := newTestKernel(t)
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	// Valid subclass.
	if _, _, err := k.Ioctl(1, OriginNative, fd, 5, []byte{7}); err != nil {
		t.Fatalf("valid subclass: %v", err)
	}
	if k.LockAcquisitions("echo_lock") != 1 {
		t.Fatal("lock not recorded")
	}
	// Invalid subclass triggers the BUG.
	if _, _, err := k.Ioctl(1, OriginNative, fd, 5, []byte{8}); !errors.Is(err, EINVAL) {
		t.Fatalf("err = %v", err)
	}
	if !k.Wedged() {
		t.Fatal("invalid subclass did not wedge")
	}
	crashes := k.Crashes()
	if !strings.Contains(crashes[0].Title, "looking up invalid subclass: 8") {
		t.Fatalf("title = %q", crashes[0].Title)
	}
}

func TestSyscallGate(t *testing.T) {
	k, _ := newTestKernel(t)
	k.SetSyscallGate(func(origin Origin, nr string) bool {
		return nr == "open" || nr == "ioctl" || nr == "close"
	})
	fd, err := k.Open(1, OriginNative, "/dev/echo0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(1, OriginNative, fd, []byte("x")); !errors.Is(err, EPERM) {
		t.Fatalf("gated write err = %v, want EPERM", err)
	}
	if _, err := k.Read(1, OriginNative, fd, 1); !errors.Is(err, EPERM) {
		t.Fatalf("gated read err = %v, want EPERM", err)
	}
	if _, _, err := k.Ioctl(1, OriginNative, fd, 1, nil); err != nil {
		t.Fatalf("allowed ioctl err = %v", err)
	}
	k.SetSyscallGate(nil)
	if _, err := k.Write(1, OriginNative, fd, []byte("x")); err != nil {
		t.Fatalf("ungated write err = %v", err)
	}
}

func TestCoverageCollected(t *testing.T) {
	k, _ := newTestKernel(t)
	k.Cov.Enable()
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	k.Ioctl(1, OriginNative, fd, 1, nil)
	if len(k.Cov.Trace()) < 2 {
		t.Fatalf("trace = %v", k.Cov.Trace())
	}
}

func TestSyscallCountAdvances(t *testing.T) {
	k, _ := newTestKernel(t)
	before := k.SyscallCount()
	fd, _ := k.Open(1, OriginNative, "/dev/echo0", 0)
	k.Close(1, OriginNative, fd)
	if k.SyscallCount() != before+2 {
		t.Fatalf("count = %d, want %d", k.SyscallCount(), before+2)
	}
}

func TestErrnoNames(t *testing.T) {
	cases := map[error]string{
		nil: "OK", EPERM: "EPERM", ENOENT: "ENOENT", EIO: "EIO",
		EBADF: "EBADF", EINVAL: "EINVAL", ENOTTY: "ENOTTY",
		EBUSY: "EBUSY", ENODEV: "ENODEV", EAGAIN: "EAGAIN",
		ENOMEM: "ENOMEM", EFAULT: "EFAULT", ENOSPC: "ENOSPC",
		ENOSYS: "ENOSYS", errors.New("other"): "ERR",
	}
	for err, want := range cases {
		if got := ErrnoName(err); got != want {
			t.Errorf("ErrnoName(%v) = %q, want %q", err, got, want)
		}
	}
}

func TestDuplicateDevicePanics(t *testing.T) {
	k, _ := newTestKernel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	k.RegisterDevice("/dev/echo0", &echoDriver{})
}

func TestConcurrentSyscallsAreSafe(t *testing.T) {
	// The native executor and HAL goroutines enter the kernel
	// concurrently; this must be race-free (run with -race).
	k, _ := newTestKernel(t)
	k.SetTracer(func(Event) {})
	k.Cov.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fd, err := k.Open(pid, Origin(pid%2), "/dev/echo0", 0)
				if err != nil {
					continue
				}
				k.Ioctl(pid, Origin(pid%2), fd, 1, []byte{byte(i)})
				k.Write(pid, Origin(pid%2), fd, []byte("x"))
				k.Read(pid, Origin(pid%2), fd, 1)
				k.Close(pid, Origin(pid%2), fd)
			}
		}(g + 1)
	}
	wg.Wait()
	if k.OpenFDs() != 0 {
		t.Fatalf("leaked %d fds", k.OpenFDs())
	}
	if k.SyscallCount() == 0 {
		t.Fatal("no syscalls recorded")
	}
}
