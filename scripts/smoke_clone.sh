#!/usr/bin/env bash
# Checkpoint/lineage smoke test: run a short in-process droidfleet campaign
# with lineage fan-out and batch pristine resets in the plain build and
# again under the droidfuzz_sanitize tag (where every checkpoint import is
# cross-verified against a re-export and the byte-identity fast paths are
# disabled), and assert from the JSON status report that the fleet actually
# forked lineages (lineage_execs > 0) — a wiring regression anywhere along
# device export/import → broker Cloner → engine scheduler would zero the
# counter long before any per-layer test fails.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

check_status() {
    local label="$1" status="$2"
    python3 - "$status" "$label" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
label = sys.argv[2]
lineage = rep.get("lineage_execs", 0)
if lineage <= 0:
    sys.exit(f"FAIL({label}): lineage_execs = {lineage}, want > 0")
execs = sum(d.get("Execs", 0) for d in rep.get("devices", {}).values())
if execs <= lineage:
    sys.exit(f"FAIL({label}): execs ({execs}) should exceed lineage execs ({lineage})")
print(f"OK({label}): lineage_execs={lineage} execs={execs}")
PY
}

go build -o "$WORK/droidfleet" ./cmd/droidfleet
"$WORK/droidfleet" -devices A1,B -iters 800 -rounds 1 \
    -lineage 2 -lineage-len 4 -reset batch \
    -status "$WORK/status.json" >"$WORK/fleet.log"
check_status plain "$WORK/status.json"

go build -tags droidfuzz_sanitize -o "$WORK/droidfleet_san" ./cmd/droidfleet
"$WORK/droidfleet_san" -devices A1,B -iters 800 -rounds 1 \
    -lineage 2 -lineage-len 4 -reset batch \
    -status "$WORK/status_san.json" >"$WORK/fleet_san.log"
check_status sanitize "$WORK/status_san.json"

echo "PASS: lineage-enabled smoke campaigns (plain + sanitize)"
