#!/usr/bin/env bash
# Distributed-fleet smoke test: stand up a real coordinator on a loopback
# TCP port with two droidfleet hosts in -coord mode, first in the plain
# build and again under the droidfuzz_sanitize tag, and assert from the
# JSON status reports that federation actually converged — both hosts must
# finish with the identical nonzero fleet corpus fingerprint, every shard
# done, and federation bytes moving both directions. A drain-handshake or
# cursor regression anywhere in coordinator/host/client would break the
# fingerprint equality long before any unit test names the culprit.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
cleanup() {
    local job
    for job in $(jobs -p); do
        kill "$job" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

PORT="${SMOKE_COORD_PORT:-7341}"

run_campaign() {
    local label="$1" coordbin="$2" fleetbin="$3" port="$4"
    "$coordbin" -listen "127.0.0.1:$port" -hosts 2 -models A1,B -shards 4 \
        -devices 1 -iters 300 -epoch 100 -linger 30s >"$WORK/coord_$label.log" 2>&1 &
    local cpid=$!
    sleep 0.5
    "$fleetbin" -coord "127.0.0.1:$port" -host-name "smokeA-$label" \
        -status "$WORK/statusA_$label.json" >"$WORK/hostA_$label.log" 2>&1 &
    local apid=$!
    "$fleetbin" -coord "127.0.0.1:$port" -host-name "smokeB-$label" \
        -status "$WORK/statusB_$label.json" >"$WORK/hostB_$label.log" 2>&1 &
    local bpid=$!
    wait "$apid" || { echo "FAIL($label): hostA exited nonzero"; cat "$WORK/hostA_$label.log"; exit 1; }
    wait "$bpid" || { echo "FAIL($label): hostB exited nonzero"; cat "$WORK/hostB_$label.log"; exit 1; }
    wait "$cpid" || { echo "FAIL($label): coordinator exited nonzero"; cat "$WORK/coord_$label.log"; exit 1; }
    if grep -q "did not drain" "$WORK/coord_$label.log"; then
        echo "FAIL($label): coordinator reported undrained hosts"
        cat "$WORK/coord_$label.log"
        exit 1
    fi
    check_status "$label" "$WORK/statusA_$label.json" "$WORK/statusB_$label.json"
}

check_status() {
    local label="$1" a="$2" b="$3"
    python3 - "$a" "$b" "$label" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))["fleet"]
b = json.load(open(sys.argv[2]))["fleet"]
label = sys.argv[3]
if a["corpus_hash"] != b["corpus_hash"]:
    sys.exit(f"FAIL({label}): corpus fingerprints diverge: {a['corpus_hash']:#x} vs {b['corpus_hash']:#x}")
if a["corpus_hash"] == 0:
    sys.exit(f"FAIL({label}): corpus fingerprint is zero — no federation happened")
steals = a.get("steals", 0) + b.get("steals", 0)
if steals < 0:
    sys.exit(f"FAIL({label}): negative steal count {steals}")
for name, rep in (("A", a), ("B", b)):
    shards = rep.get("shards") or []
    if not shards:
        sys.exit(f"FAIL({label}): host {name} ran no shards")
    for sh in shards:
        if sh["state"] != "done":
            sys.exit(f"FAIL({label}): host {name} shard {sh['id']} state {sh['state']!r}, want done")
    if rep.get("fed_bytes_out", 0) <= 0 or rep.get("fed_bytes_in", 0) <= 0:
        sys.exit(f"FAIL({label}): host {name} moved no federation bytes")
print(f"OK({label}): corpus_hash={a['corpus_hash']:#x} "
      f"shards={len(a.get('shards') or [])}+{len(b.get('shards') or [])} steals={steals}")
PY
}

go build -o "$WORK/droidcoordd" ./cmd/droidcoordd
go build -o "$WORK/droidfleet" ./cmd/droidfleet
run_campaign plain "$WORK/droidcoordd" "$WORK/droidfleet" "$PORT"

go build -tags droidfuzz_sanitize -o "$WORK/droidcoordd_san" ./cmd/droidcoordd
go build -tags droidfuzz_sanitize -o "$WORK/droidfleet_san" ./cmd/droidfleet
run_campaign sanitize "$WORK/droidcoordd_san" "$WORK/droidfleet_san" "$((PORT + 1))"

echo "PASS: coordinated two-host campaigns converged (plain + sanitize)"
