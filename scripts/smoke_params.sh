#!/usr/bin/env bash
# Param-dimension smoke test: run a short in-process droidfleet campaign
# with -params in the plain build and again under the droidfuzz_sanitize
# tag, and assert from the JSON status report that the fleet actually
# exercised the runtime-parameter dimension (param_writes > 0) — a wiring
# regression anywhere along vkernel → drivers → DSL → probe → engine would
# zero the counter long before any test of the individual layer fails.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

check_status() {
    local label="$1" status="$2"
    python3 - "$status" "$label" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
label = sys.argv[2]
writes = rep.get("param_writes", 0)
if writes <= 0:
    sys.exit(f"FAIL({label}): param_writes = {writes}, want > 0")
execs = sum(d.get("Execs", 0) for d in rep.get("devices", {}).values())
if execs <= 0:
    sys.exit(f"FAIL({label}): no executions recorded")
print(f"OK({label}): param_writes={writes} execs={execs}")
PY
}

go build -o "$WORK/droidfleet" ./cmd/droidfleet
"$WORK/droidfleet" -devices A1,B -iters 600 -rounds 1 -params \
    -status "$WORK/status.json" >"$WORK/fleet.log"
check_status plain "$WORK/status.json"

go build -tags droidfuzz_sanitize -o "$WORK/droidfleet_san" ./cmd/droidfleet
"$WORK/droidfleet_san" -devices A1,B -iters 600 -rounds 1 -params \
    -status "$WORK/status_san.json" >"$WORK/fleet_san.log"
check_status sanitize "$WORK/status_san.json"

echo "PASS: param-enabled smoke campaigns (plain + sanitize)"
