#!/usr/bin/env bash
# Loopback smoke test for the remote executor boundary: start droidbrokerd
# serving two virtual devices on TCP, run a short droidfleet campaign
# against it in -remote mode, assert the campaign executed work on every
# engine with zero transport errors, then run a second campaign in
# windowed-batch mode (wire protocol v2) and assert the summary uplink
# actually saved coverage bytes, before shutting the daemon down cleanly.
# A third campaign repeats the batched run with both binaries built under
# the droidfuzz_sanitize tag, so checked pools, graph invariants, and wire
# round-trip verification all run against real remote traffic.
set -euo pipefail

cd "$(dirname "$0")/.."

BASE_PORT="${SMOKE_PORT:-7140}"
ADDR1="127.0.0.1:${BASE_PORT}"
ADDR2="127.0.0.1:$((BASE_PORT + 1))"
WORK="$(mktemp -d)"
trap 'kill "${BROKERD_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/droidbrokerd" ./cmd/droidbrokerd
go build -o "$WORK/droidfleet" ./cmd/droidfleet

"$WORK/droidbrokerd" -devices A1,B -listen "$ADDR1" >"$WORK/brokerd.log" 2>&1 &
BROKERD_PID=$!

# Wait for both listeners to come up.
for i in $(seq 1 100); do
    if grep -q '^droidbrokerd: ready$' "$WORK/brokerd.log"; then
        break
    fi
    if ! kill -0 "$BROKERD_PID" 2>/dev/null; then
        echo "FAIL: droidbrokerd died during startup" >&2
        cat "$WORK/brokerd.log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q '^droidbrokerd: ready$' "$WORK/brokerd.log" || {
    echo "FAIL: droidbrokerd never became ready" >&2
    cat "$WORK/brokerd.log" >&2
    exit 1
}

"$WORK/droidfleet" -remote "$ADDR1,$ADDR2" -iters 600 -rounds 2 \
    -status "$WORK/status.json" | tee "$WORK/fleet.log"

# Every engine must have executed at least its iteration budget (triage
# and minimization add more) with no transport errors.
awk '
    /execs=/ {
        id = $1
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^execs=/)    { split($i, a, "="); if (a[2] + 0 > execs[id]) execs[id] = a[2] + 0 }
            if ($i ~ /^execerrs=/) { split($i, a, "="); if (a[2] + 0 != 0) errs++ }
        }
    }
    END {
        n = 0
        for (id in execs) {
            n++
            if (execs[id] < 600) { print "FAIL: engine " id " fell short of 600 execs"; exit 1 }
        }
        if (n < 2)    { print "FAIL: fewer than 2 engines reported stats"; exit 1 }
        if (errs > 0) { print "FAIL: transport errors during smoke"; exit 1 }
    }
' "$WORK/fleet.log"
if ! grep -q '"exec_errors": 0' "$WORK/status.json"; then
    echo "FAIL: status report shows transport errors" >&2
    cat "$WORK/status.json" >&2
    exit 1
fi

# Second campaign: wire protocol v2 — pipelined generation feeding batched
# frames through a bounded in-flight window, with the delta-coded summary
# uplink. The per-connection wire accounting must show batched executions
# and a nonzero bytes-saved counter on every engine.
"$WORK/droidfleet" -remote "$ADDR1,$ADDR2" -iters 600 -rounds 2 \
    -pipeline 4 -batch 32 -window 8 \
    -status "$WORK/status_batch.json" | tee "$WORK/fleet_batch.log"

awk '
    /execs=/ && !/^  wire/ {
        id = $1
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^execs=/)    { split($i, a, "="); if (a[2] + 0 > execs[id]) execs[id] = a[2] + 0 }
            if ($i ~ /^execerrs=/) { split($i, a, "="); if (a[2] + 0 != 0) errs++ }
        }
    }
    /^  wire / {
        id = $2
        wires++
        for (i = 1; i <= NF; i++) {
            if ($i ~ /^batched=/) { split($i, a, "="); if (a[2] + 0 == 0) { print "FAIL: engine " id " shipped no batched execs"; exit 1 } }
            if ($i ~ /^saved=/)   { split($i, a, "="); if (a[2] + 0 == 0) { print "FAIL: engine " id " saved no uplink bytes"; exit 1 } }
        }
    }
    END {
        n = 0
        for (id in execs) {
            n++
            if (execs[id] < 600) { print "FAIL: engine " id " fell short of 600 execs in batch mode"; exit 1 }
        }
        if (n < 2)     { print "FAIL: fewer than 2 engines reported stats in batch mode"; exit 1 }
        if (errs > 0)  { print "FAIL: transport errors during batched smoke"; exit 1 }
        if (wires < 2) { print "FAIL: fewer than 2 wire-accounting lines printed"; exit 1 }
    }
' "$WORK/fleet_batch.log"
if ! grep -q '"exec_errors": 0' "$WORK/status_batch.json"; then
    echo "FAIL: batched status report shows transport errors" >&2
    cat "$WORK/status_batch.json" >&2
    exit 1
fi

# The daemon must exit cleanly on SIGTERM.
kill -TERM "$BROKERD_PID"
wait "$BROKERD_PID" || {
    echo "FAIL: droidbrokerd exited nonzero on SIGTERM" >&2
    exit 1
}
grep -q 'shutting down' "$WORK/brokerd.log" || {
    echo "FAIL: shutdown message missing" >&2
    exit 1
}
BROKERD_PID=""

# Third campaign: the same batched loop with the invariant sanitizer
# compiled in on both ends. Any double-Put, use-after-put, relation-graph
# invariant break, or wire round-trip mismatch panics the offending
# process and fails the smoke.
SAN_ADDR1="127.0.0.1:$((BASE_PORT + 2))"
SAN_ADDR2="127.0.0.1:$((BASE_PORT + 3))"

go build -tags droidfuzz_sanitize -o "$WORK/droidbrokerd_san" ./cmd/droidbrokerd
go build -tags droidfuzz_sanitize -o "$WORK/droidfleet_san" ./cmd/droidfleet

"$WORK/droidbrokerd_san" -devices A1,B -listen "$SAN_ADDR1" >"$WORK/brokerd_san.log" 2>&1 &
BROKERD_PID=$!

for i in $(seq 1 100); do
    if grep -q '^droidbrokerd: ready$' "$WORK/brokerd_san.log"; then
        break
    fi
    if ! kill -0 "$BROKERD_PID" 2>/dev/null; then
        echo "FAIL: sanitize droidbrokerd died during startup" >&2
        cat "$WORK/brokerd_san.log" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q '^droidbrokerd: ready$' "$WORK/brokerd_san.log" || {
    echo "FAIL: sanitize droidbrokerd never became ready" >&2
    cat "$WORK/brokerd_san.log" >&2
    exit 1
}

"$WORK/droidfleet_san" -remote "$SAN_ADDR1,$SAN_ADDR2" -iters 300 -rounds 1 \
    -pipeline 4 -batch 32 -window 8 \
    -status "$WORK/status_san.json" | tee "$WORK/fleet_san.log"

if ! grep -q '"exec_errors": 0' "$WORK/status_san.json"; then
    echo "FAIL: sanitize campaign shows transport errors" >&2
    cat "$WORK/status_san.json" >&2
    exit 1
fi
if grep -q 'droidfuzz_sanitize:' "$WORK/brokerd_san.log"; then
    echo "FAIL: sanitizer fired on the device side" >&2
    cat "$WORK/brokerd_san.log" >&2
    exit 1
fi

kill -TERM "$BROKERD_PID"
wait "$BROKERD_PID" || {
    echo "FAIL: sanitize droidbrokerd exited nonzero on SIGTERM" >&2
    exit 1
}
BROKERD_PID=""

echo "PASS: remote loopback smoke ok (plain, batched, sanitize)"
